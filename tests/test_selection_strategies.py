"""Unit tests for pluggable context-selection strategies and HitsPrestige."""

import pytest

from repro.citations.graph import CitationGraph
from repro.core.context import Context, ContextPaperSet
from repro.core.scores import HitsPrestige, TextPrestige
from repro.core.search import SELECTION_STRATEGIES, ContextSearchEngine
from repro.core.vectors import PaperVectorStore
from repro.index.inverted import InvertedIndex
from repro.index.search import KeywordSearchEngine


@pytest.fixture(scope="module")
def setup(request):
    corpus = request.getfixturevalue("tiny_corpus")
    ontology = request.getfixturevalue("tiny_ontology")
    index = InvertedIndex().index_corpus(corpus)
    vectors = PaperVectorStore(corpus, index.analyzer)
    graph = CitationGraph.from_corpus(corpus)
    paper_set = ContextPaperSet(
        ontology,
        [
            Context("met", ("M1", "M2", "M3")),
            Context("sig", ("S1", "S2")),
            Context("glu", ("M1", "M2")),
        ],
    )
    representatives = {"met": "M1", "sig": "S1", "glu": "M1"}
    prestige = TextPrestige(corpus, vectors, graph, representatives).score_all(
        paper_set
    )
    keyword = KeywordSearchEngine(index)
    return {
        "ontology": ontology,
        "paper_set": paper_set,
        "prestige": prestige,
        "keyword": keyword,
        "vectors": vectors,
        "representatives": representatives,
        "graph": graph,
    }


def make_engine(setup, strategy, **kwargs):
    return ContextSearchEngine(
        setup["ontology"],
        setup["paper_set"],
        setup["prestige"],
        setup["keyword"],
        selection_strategy=strategy,
        **kwargs,
    )


class TestNameStrategy:
    def test_selects_by_term_name(self, setup):
        engine = make_engine(setup, "name")
        selections = engine.select_contexts("signaling process")
        ids = [s.context_id for s in selections]
        assert "sig" in ids
        # 'signaling' does not appear in met/glu term names, but 'process'
        # does: all contexts match partially, sig matches most.
        assert ids[0] == "sig"

    def test_no_name_overlap_selects_nothing(self, setup):
        engine = make_engine(setup, "name")
        assert engine.select_contexts("quasar telescope") == []

    def test_strength_is_query_coverage(self, setup):
        engine = make_engine(setup, "name")
        (top, *_rest) = engine.select_contexts("glucose metabolic")
        assert top.context_id == "glu"
        assert top.strength == pytest.approx(1.0)


class TestRepresentativeStrategy:
    def test_selects_topical_context(self, setup):
        engine = make_engine(
            setup,
            "representative",
            vectors=setup["vectors"],
            representatives=setup["representatives"],
        )
        selections = engine.select_contexts("kinase receptor cascades")
        assert selections[0].context_id == "sig"

    def test_requires_vectors_and_representatives(self, setup):
        with pytest.raises(ValueError, match="representative"):
            make_engine(setup, "representative")

    def test_unknown_query_vector_selects_nothing(self, setup):
        engine = make_engine(
            setup,
            "representative",
            vectors=setup["vectors"],
            representatives=setup["representatives"],
        )
        assert engine.select_contexts("zzz qqq") == []


class TestStrategyValidation:
    def test_unknown_strategy_rejected(self, setup):
        with pytest.raises(ValueError, match="selection_strategy"):
            make_engine(setup, "oracle")

    def test_all_strategies_listed(self):
        assert set(SELECTION_STRATEGIES) == {"probe", "name", "representative"}

    def test_search_works_with_each_available_strategy(self, setup):
        for strategy in ("probe", "name"):
            engine = make_engine(setup, strategy)
            hits = engine.search("metabolic glucose")
            assert all(0.0 <= h.relevancy <= 1.0 for h in hits)


class TestHitsPrestige:
    def test_in_context_authority_ordering(self, setup):
        scorer = HitsPrestige(setup["graph"])
        raw = scorer.score_context(setup["paper_set"].context("met"))
        # M1 is cited by M2 and M3 within the context: top authority.
        assert raw["M1"] == max(raw.values())

    def test_empty_context(self, setup):
        scorer = HitsPrestige(setup["graph"])
        assert scorer.score_context(Context("met", ())) == {}

    def test_score_all_normalized_with_max(self, setup):
        scorer = HitsPrestige(setup["graph"])
        scores = scorer.score_all(setup["paper_set"])
        for context_id in scores.context_ids():
            values = scores.of(context_id).values()
            assert all(0.0 <= v <= 1.0 for v in values)

    def test_pipeline_exposes_hits(self, small_dataset):
        from repro.pipeline import Pipeline

        pipeline = Pipeline.from_dataset(small_dataset, min_context_size=3)
        scores = pipeline.prestige("hits", "text")
        assert scores.function_name == "hits"
        assert len(scores) > 0
