"""Keyword-search substrate: inverted index + TF-IDF search engine.

This is the PubMed-style baseline the paper compares against, and the
first stage of AC-answer-set construction ("a standard keyword-based
search with a high threshold", section 2).

- :mod:`repro.index.inverted` -- the inverted index with per-section
  postings.
- :mod:`repro.index.search` -- the :class:`KeywordSearchEngine` with
  TF-IDF ranking, threshold retrieval, and PubMed-style unranked listing.
- :mod:`repro.index.backends` -- the pluggable :class:`SearchBackend`
  registry (``memory``/``ondisk`` built-ins) every other layer talks to
  instead of concrete index classes.
"""

from repro.index.inverted import InvertedIndex, Posting
from repro.index.positional import PositionalIndex
from repro.index.search import KeywordHit, KeywordSearchEngine, QueryEvaluation
from repro.index.snippets import Snippet, best_snippet
from repro.index import backends
from repro.index.backends import SearchBackend

__all__ = [
    "InvertedIndex",
    "PositionalIndex",
    "Posting",
    "SearchBackend",
    "backends",
    "KeywordSearchEngine",
    "KeywordHit",
    "QueryEvaluation",
    "best_snippet",
    "Snippet",
]
