"""Named scale presets for the synthetic testbed.

One place to encode "how big is a reasonable experiment", shared by the
CLI, the benchmarks, and documentation examples.  The paper's own scale
(72k papers / 20k+ GO terms) is included for reference but takes tens of
minutes of pre-processing in pure Python.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.datagen.corpus_gen import CorpusGenerator, GeneratedDataset
from repro.datagen.ontology_gen import OntologyGenerator


@dataclass(frozen=True)
class ScalePreset:
    """One named corpus/ontology scale."""

    name: str
    n_papers: int
    n_terms: int
    max_depth: int
    min_children: int
    max_children: int
    #: Experiment-view context-size floor (the paper's small-context
    #: exclusion, scaled to the corpus).
    min_context_size: int
    description: str

    def generator(self) -> CorpusGenerator:
        return CorpusGenerator(
            n_papers=self.n_papers,
            ontology_generator=OntologyGenerator(
                n_terms=self.n_terms,
                max_depth=self.max_depth,
                min_children=self.min_children,
                max_children=self.max_children,
            ),
        )

    def generate(self, seed: int = 0) -> GeneratedDataset:
        return self.generator().generate(seed=seed)


PRESETS: Dict[str, ScalePreset] = {
    preset.name: preset
    for preset in (
        ScalePreset(
            name="tiny",
            n_papers=200,
            n_terms=40,
            max_depth=5,
            min_children=2,
            max_children=4,
            min_context_size=3,
            description="seconds; smoke tests and docs examples",
        ),
        ScalePreset(
            name="small",
            n_papers=800,
            n_terms=150,
            max_depth=6,
            min_children=2,
            max_children=3,
            min_context_size=5,
            description="~30s pre-processing; interactive experimentation",
        ),
        ScalePreset(
            name="default",
            n_papers=1600,
            n_terms=400,
            max_depth=7,
            min_children=2,
            max_children=3,
            min_context_size=10,
            description="the benchmark configuration; reaches level-7 contexts",
        ),
        ScalePreset(
            name="large",
            n_papers=8000,
            n_terms=1200,
            max_depth=8,
            min_children=2,
            max_children=3,
            min_context_size=30,
            description="minutes of pre-processing; stability studies",
        ),
        ScalePreset(
            name="paper",
            n_papers=72000,
            n_terms=20000,
            max_depth=12,
            min_children=2,
            max_children=4,
            min_context_size=100,
            description="the ICDE testbed's nominal scale; expect long runs",
        ),
    )
}


def get_preset(name: str) -> ScalePreset:
    """Look up a preset by name (ValueError lists the options)."""
    try:
        return PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown preset {name!r}; choose from {sorted(PRESETS)}"
        ) from None
