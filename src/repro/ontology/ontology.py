"""The ontology DAG: hierarchy queries, levels, and information content.

Implements every structural operation the paper's pipeline needs:

- parents / children / ancestors / descendants over ``is_a`` edges;
- term *level* -- root terms are level 1, and a term's level is
  ``1 + min(level of parents)`` (the shortest path from a root, matching
  "Level 1 = root level" in figure 5.3's caption);
- information content ``I(C) = log(1 / p(C))`` with
  ``p(C) = (# descendants of C) / (# terms in the ontology)`` exactly as
  defined in section 4 (Resnik, reference [13]); the descendant count
  includes C itself so no term has p = 0;
- ``RateOfDecay(C_ancs, C_desc) = I(C_ancs) / I(C_desc)`` used when a
  context inherits papers from an ancestor.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set

from repro.ontology.term import Term


class OntologyError(ValueError):
    """Raised for structural problems: unknown ids, cycles, bad edges."""


class Ontology:
    """An immutable-after-construction DAG of :class:`Term` objects."""

    def __init__(self, terms: Iterable[Term]) -> None:
        self._terms: Dict[str, Term] = {}
        for term in terms:
            if term.term_id in self._terms:
                raise OntologyError(f"duplicate term id {term.term_id!r}")
            self._terms[term.term_id] = term
        self._children: Dict[str, List[str]] = {tid: [] for tid in self._terms}
        for term in self._terms.values():
            for parent_id in term.parent_ids:
                if parent_id not in self._terms:
                    raise OntologyError(
                        f"{term.term_id} lists unknown parent {parent_id!r}"
                    )
                self._children[parent_id].append(term.term_id)
        for child_list in self._children.values():
            child_list.sort()
        self._levels = self._compute_levels()
        self._descendant_counts: Optional[Dict[str, int]] = None

    # -- basic access ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._terms)

    def __contains__(self, term_id: str) -> bool:
        return term_id in self._terms

    def __iter__(self) -> Iterator[Term]:
        return iter(self._terms.values())

    def term(self, term_id: str) -> Term:
        """Return the term with ``term_id`` (raises OntologyError if absent)."""
        try:
            return self._terms[term_id]
        except KeyError:
            raise OntologyError(f"unknown term id {term_id!r}") from None

    def term_ids(self) -> List[str]:
        """All term ids in insertion order."""
        return list(self._terms)

    @property
    def roots(self) -> List[str]:
        """Ids of terms with no parents, sorted."""
        return sorted(tid for tid, t in self._terms.items() if not t.parent_ids)

    # -- hierarchy -------------------------------------------------------------

    def parents(self, term_id: str) -> List[str]:
        """Direct ``is_a`` parents of ``term_id``."""
        return list(self.term(term_id).parent_ids)

    def children(self, term_id: str) -> List[str]:
        """Direct children of ``term_id``, sorted by id."""
        self.term(term_id)  # validate
        return list(self._children[term_id])

    def ancestors(self, term_id: str, include_self: bool = False) -> Set[str]:
        """All transitive ancestors of ``term_id``."""
        result: Set[str] = set()
        queue = deque(self.term(term_id).parent_ids)
        while queue:
            current = queue.popleft()
            if current in result:
                continue
            result.add(current)
            queue.extend(self._terms[current].parent_ids)
        if include_self:
            result.add(term_id)
        return result

    def descendants(self, term_id: str, include_self: bool = False) -> Set[str]:
        """All transitive descendants of ``term_id``."""
        result: Set[str] = set()
        queue = deque(self._children[self.term(term_id).term_id])
        while queue:
            current = queue.popleft()
            if current in result:
                continue
            result.add(current)
            queue.extend(self._children[current])
        if include_self:
            result.add(term_id)
        return result

    def is_ancestor(self, ancestor_id: str, descendant_id: str) -> bool:
        """True if ``ancestor_id`` is a strict ancestor of ``descendant_id``."""
        return ancestor_id in self.ancestors(descendant_id)

    def are_hierarchically_related(self, a: str, b: str) -> bool:
        """True if one term is an ancestor of the other (or they are equal).

        Used by the section-7 extension when grading cross-context
        relationship weights.
        """
        if a == b:
            return True
        return self.is_ancestor(a, b) or self.is_ancestor(b, a)

    def level(self, term_id: str) -> int:
        """Depth of ``term_id``: roots are level 1 (figure 5.3 convention)."""
        self.term(term_id)
        return self._levels[term_id]

    def terms_at_level(self, level: int) -> List[str]:
        """Ids of all terms whose level equals ``level``, sorted."""
        return sorted(tid for tid, lv in self._levels.items() if lv == level)

    @property
    def max_level(self) -> int:
        """Deepest level present in the ontology (0 for an empty ontology)."""
        return max(self._levels.values(), default=0)

    def _compute_levels(self) -> Dict[str, int]:
        """BFS from the roots; also detects cycles/unreachable terms."""
        levels: Dict[str, int] = {}
        queue: deque = deque()
        for root in self.roots:
            levels[root] = 1
            queue.append(root)
        while queue:
            current = queue.popleft()
            next_level = levels[current] + 1
            for child in self._children[current]:
                known = levels.get(child)
                if known is None or next_level < known:
                    levels[child] = next_level
                    queue.append(child)
        if len(levels) != len(self._terms):
            orphans = sorted(set(self._terms) - set(levels))
            raise OntologyError(
                "ontology contains cycles or terms unreachable from any root: "
                f"{orphans[:5]}{'...' if len(orphans) > 5 else ''}"
            )
        return levels

    # -- information content -----------------------------------------------------

    def p(self, term_id: str) -> float:
        """Relative size p(C) = (# descendants of C, incl. C) / (# terms)."""
        counts = self._descendant_count_map()
        self.term(term_id)
        return counts[term_id] / len(self._terms)

    def information_content(self, term_id: str) -> float:
        """I(C) = log(1 / p(C)).  Roots approach 0; leaves are largest."""
        return math.log(1.0 / self.p(term_id))

    def rate_of_decay(self, ancestor_id: str, descendant_id: str) -> float:
        """RateOfDecay(C_ancs, C_desc) = I(C_ancs) / I(C_desc) (section 4).

        Quantifies informativeness lost when a descendant context inherits
        its ancestor's papers.  Always in [0, 1] when ``ancestor_id`` really
        is an ancestor (ancestors have lower information content).  A root
        ancestor with I = 0 yields 0: inheriting from the root conveys
        nothing about the specific term.
        """
        if not self.is_ancestor(ancestor_id, descendant_id):
            raise OntologyError(
                f"{ancestor_id} is not an ancestor of {descendant_id}"
            )
        ic_descendant = self.information_content(descendant_id)
        if ic_descendant == 0.0:
            return 1.0
        return self.information_content(ancestor_id) / ic_descendant

    def _descendant_count_map(self) -> Dict[str, int]:
        """Count of descendants (incl. self) per term, computed once.

        Runs one reverse-topological pass accumulating descendant *sets*
        (a term can reach the same descendant through multiple parents, so
        plain count addition would double-count in a DAG).
        """
        if self._descendant_counts is not None:
            return self._descendant_counts
        order = self._topological_order()
        reachable: Dict[str, FrozenSet[str]] = {}
        for term_id in reversed(order):
            below: Set[str] = {term_id}
            for child in self._children[term_id]:
                below.update(reachable[child])
            reachable[term_id] = frozenset(below)
        self._descendant_counts = {tid: len(s) for tid, s in reachable.items()}
        return self._descendant_counts

    def _topological_order(self) -> List[str]:
        """Kahn's algorithm over parent->child edges (parents first)."""
        in_degree = {tid: len(t.parent_ids) for tid, t in self._terms.items()}
        queue = deque(sorted(tid for tid, deg in in_degree.items() if deg == 0))
        order: List[str] = []
        while queue:
            current = queue.popleft()
            order.append(current)
            for child in self._children[current]:
                in_degree[child] -= 1
                if in_degree[child] == 0:
                    queue.append(child)
        if len(order) != len(self._terms):
            raise OntologyError("ontology graph contains a cycle")
        return order

    # -- restriction ---------------------------------------------------------------

    def subontology(self, namespace: str) -> "Ontology":
        """The ontology restricted to one namespace (e.g. GO aspect).

        The real Gene Ontology carries three aspects in one file
        (biological_process, molecular_function, cellular_component);
        context-based search runs within one.  ``is_a`` references to
        terms outside the namespace are dropped, so cross-aspect links
        never leak in.  Raises if the namespace matches no term.
        """
        keep = {t.term_id for t in self._terms.values() if t.namespace == namespace}
        if not keep:
            raise OntologyError(f"no terms in namespace {namespace!r}")
        terms = [
            Term(
                term_id=t.term_id,
                name=t.name,
                namespace=t.namespace,
                parent_ids=tuple(p for p in t.parent_ids if p in keep),
            )
            for t in self._terms.values()
            if t.term_id in keep
        ]
        return Ontology(terms)

    def namespaces(self) -> List[str]:
        """Distinct namespaces present, sorted."""
        return sorted({t.namespace for t in self._terms.values()})

    # -- traversal helpers -------------------------------------------------------

    def walk_breadth_first(self, start: Optional[str] = None) -> Iterator[str]:
        """Yield term ids breadth-first from ``start`` (or all roots)."""
        starts: Sequence[str] = [start] if start is not None else self.roots
        seen: Set[str] = set()
        queue = deque(starts)
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            self.term(current)
            seen.add(current)
            yield current
            queue.extend(self._children[current])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Ontology({len(self)} terms, {len(self.roots)} roots, "
            f"max_level={self.max_level})"
        )
