"""The ``ondisk`` backend: packed postings behind ``mmap``.

The memory backend's cold open is a full-index parse: every posting of
every term becomes a Python ``Posting`` before the first query runs, so
corpus scale is capped by RAM and open time.  This backend flips that:
the postings live in one packed binary file, opening a workspace maps it
(``mmap``) and parses only a small header, and each term's postings are
decoded on first touch into a bounded LRU cache.  Open cost is
proportional to the vocabulary header, not the corpus; resident memory
is proportional to the *queried* vocabulary, not the indexed one.

On-disk layout (artifact = JSON descriptor + binary sidecar):

- ``<artifact>.json`` -- a tiny format-tagged descriptor
  (``repro/index-ondisk/v1``) naming the sidecar file, so workspace
  manifests and format sniffing keep working on plain JSON;
- ``<artifact>.bin`` -- ``magic | u64 header_len | header JSON | data``:

  - header: paper-id table, section table, per-term
    ``(df, offset, count)`` directory, per-(paper, section) forward
    directory, ``n_papers``, ``revision``;
  - data: per-term postings runs of packed ``(paper_idx u32,
    section_idx u8, tf u32)`` records **in indexing order** (scoring
    sums floats in postings order, so preserving it keeps rankings
    byte-identical with the memory backend), then per-(paper, section)
    forward runs of ``(term_idx u32, tf u32)``.

Metrics: ``index.backend.term_loads`` / ``index.backend.cache_hit`` /
``index.backend.cache_evict`` counters on the term cache, and an
``index.backend.mapped_bytes`` gauge set when a file is mapped.
"""

from __future__ import annotations

import json
import mmap
import struct
import sys
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.corpus.corpus import Corpus
from repro.corpus.paper import Section
from repro.index.backends.base import SearchBackend
from repro.index.backends.registry import SearchBackendSpec
from repro.index.inverted import InvertedIndex, Posting
from repro.obs import get_registry
from repro.text.analyze import Analyzer, default_analyzer

ONDISK_FORMAT = "repro/index-ondisk/v1"

_MAGIC = b"RPROIDX1"
_LEN = struct.Struct("<Q")
_POSTING = struct.Struct("<IBI")   # paper_idx, section_idx, term_frequency
_FORWARD = struct.Struct("<II")    # term_idx, term_frequency

#: Default bound on decoded-term residency.  Sized for query serving --
#: far above any realistic per-query term count, far below a large
#: corpus vocabulary.
DEFAULT_TERM_CACHE_SIZE = 1024


def _sidecar_path(path) -> Path:
    """The packed-postings file next to the descriptor ``path``."""
    path = Path(path)
    return path.with_name(path.stem + ".bin")


def save_packed_index(index, path) -> None:
    """Pack any backend exposing ``to_payload`` into the ondisk format.

    Replays the per-paper per-section counts exactly the way
    ``InvertedIndex.from_payload`` does, so the packed postings order --
    and therefore every downstream score sum -- matches what a memory
    load of the same artifact would produce.
    """
    papers: Mapping[str, Mapping[str, Mapping[str, int]]]
    papers = index.to_payload()["papers"]

    paper_ids: List[str] = []
    section_values: List[str] = []
    section_idx_of: Dict[str, int] = {}
    term_idx_of: Dict[str, int] = {}
    term_postings: Dict[int, List[Tuple[int, int, int]]] = {}
    term_df: Dict[int, int] = {}
    forward_runs: List[Tuple[int, int, List[Tuple[int, int]]]] = []

    for paper_idx, (paper_id, sections) in enumerate(papers.items()):
        paper_ids.append(paper_id)
        seen_terms = set()
        for section_value, counts in sections.items():
            section_idx = section_idx_of.setdefault(
                section_value, len(section_idx_of)
            )
            if section_idx == len(section_values):
                section_values.append(section_value)
            run: List[Tuple[int, int]] = []
            for term, tf in counts.items():
                term_idx = term_idx_of.setdefault(term, len(term_idx_of))
                term_postings.setdefault(term_idx, []).append(
                    (paper_idx, section_idx, int(tf))
                )
                run.append((term_idx, int(tf)))
                seen_terms.add(term_idx)
            forward_runs.append((paper_idx, section_idx, run))
        for term_idx in seen_terms:
            term_df[term_idx] = term_df.get(term_idx, 0) + 1

    data = bytearray()
    terms_header: List[Tuple[str, int, int, int]] = []
    for term, term_idx in term_idx_of.items():
        run = term_postings.get(term_idx, [])
        terms_header.append((term, term_df.get(term_idx, 0), len(data), len(run)))
        for record in run:
            data += _POSTING.pack(*record)
    forward_header: List[Tuple[int, int, int, int]] = []
    for paper_idx, section_idx, run in forward_runs:
        forward_header.append((paper_idx, section_idx, len(data), len(run)))
        for record in run:
            data += _FORWARD.pack(*record)

    header = json.dumps(
        {
            "n_papers": len(paper_ids),
            "revision": len(paper_ids),
            "paper_ids": paper_ids,
            "sections": section_values,
            "terms": terms_header,
            "forward": forward_header,
        }
    ).encode("utf-8")

    path = Path(path)
    sidecar = _sidecar_path(path)
    with open(sidecar, "wb") as handle:
        handle.write(_MAGIC)
        handle.write(_LEN.pack(len(header)))
        handle.write(header)
        handle.write(bytes(data))
    from repro.core.io import write_tagged_json  # lazy: core.io imports repro.index

    write_tagged_json({"backend": "ondisk", "data_file": sidecar.name},
                      path, ONDISK_FORMAT)


class OndiskPostingsBackend(SearchBackend):
    """Read-only :class:`SearchBackend` over a packed, mmapped postings file.

    Construction maps the sidecar and parses only its header -- no
    posting is decoded until a query asks for its term.  Decoded terms
    live in a bounded LRU so resident memory tracks the working set.
    The backend is immutable: ``index_paper``/``remove_paper`` raise,
    and :attr:`revision` is the value frozen into the artifact.
    """

    backend_name = "ondisk"

    def __init__(
        self,
        path,
        analyzer: Optional[Analyzer] = None,
        term_cache_size: int = DEFAULT_TERM_CACHE_SIZE,
    ) -> None:
        self.analyzer = analyzer if analyzer is not None else default_analyzer()
        descriptor_path = Path(path)
        from repro.core.io import read_tagged_json  # lazy: core.io imports repro.index

        descriptor = read_tagged_json(descriptor_path, ONDISK_FORMAT)
        self._path = descriptor_path.with_name(descriptor["data_file"])
        self._file = open(self._path, "rb")
        self._mmap = mmap.mmap(self._file.fileno(), 0, access=mmap.ACCESS_READ)
        if self._mmap[: len(_MAGIC)] != _MAGIC:
            raise ValueError(f"{self._path}: not a packed index (bad magic)")
        (header_len,) = _LEN.unpack_from(self._mmap, len(_MAGIC))
        header_start = len(_MAGIC) + _LEN.size
        try:
            header = json.loads(
                self._mmap[header_start : header_start + header_len].decode("utf-8")
            )
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ValueError(f"{self._path}: corrupt header ({error})") from error
        self._data_start = header_start + header_len

        self._n_papers = int(header["n_papers"])
        self._revision = int(header["revision"])
        self._paper_ids: Tuple[str, ...] = tuple(header["paper_ids"])
        self._paper_index = {pid: i for i, pid in enumerate(self._paper_ids)}
        self._sections: Tuple[Section, ...] = tuple(
            Section(value) for value in header["sections"]
        )
        self._section_index = {s: i for i, s in enumerate(self._sections)}
        self._terms: Dict[str, Tuple[int, int, int]] = {
            term: (int(df), int(offset), int(count))
            for term, df, offset, count in header["terms"]
        }
        self._term_list: Tuple[str, ...] = tuple(self._terms)
        # Forward directory grouped per paper, in stored (= indexing) order.
        self._forward: Dict[int, List[Tuple[int, int, int]]] = {}
        for paper_idx, section_idx, offset, count in header["forward"]:
            self._forward.setdefault(int(paper_idx), []).append(
                (int(section_idx), int(offset), int(count))
            )

        self._term_cache: "OrderedDict[str, Tuple[Posting, ...]]" = OrderedDict()
        self._term_cache_size = max(0, int(term_cache_size))
        self._cache_lock = threading.Lock()
        get_registry().gauge("index.backend.mapped_bytes").set(len(self._mmap))

    # -- lifecycle -----------------------------------------------------------------

    def close(self) -> None:
        """Release the mapping and file handle (idempotent)."""
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None
        if self._file is not None:
            self._file.close()
            self._file = None

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # -- immutability --------------------------------------------------------------

    def index_corpus(self, corpus: Corpus) -> "OndiskPostingsBackend":
        raise TypeError(
            "ondisk index backend is read-only; rebuild the artifact "
            "(repro build --index-backend ondisk) to change the corpus"
        )

    def index_paper(self, paper) -> None:
        raise TypeError(
            "ondisk index backend is read-only; rebuild the artifact "
            "(repro build --index-backend ondisk) to change the corpus"
        )

    def remove_paper(self, paper_id: str) -> None:
        raise TypeError(
            "ondisk index backend is read-only; rebuild the artifact "
            "(repro build --index-backend ondisk) to change the corpus"
        )

    # -- corpus-level facts --------------------------------------------------------

    @property
    def n_papers(self) -> int:
        return self._n_papers

    @property
    def revision(self) -> int:
        return self._revision

    @property
    def n_terms(self) -> int:
        return len(self._terms)

    # -- postings ------------------------------------------------------------------

    def postings(self, term: str) -> Sequence[Posting]:
        entry = self._terms.get(term)
        if entry is None:
            return ()
        registry = get_registry()
        with self._cache_lock:
            cached = self._term_cache.get(term)
            if cached is not None:
                self._term_cache.move_to_end(term)
                registry.counter("index.backend.cache_hit").inc()
                return cached
        _, offset, count = entry
        decoded = self._decode_postings(offset, count)
        registry.counter("index.backend.term_loads").inc()
        if self._term_cache_size:
            with self._cache_lock:
                self._term_cache[term] = decoded
                self._term_cache.move_to_end(term)
                while len(self._term_cache) > self._term_cache_size:
                    self._term_cache.popitem(last=False)
                    registry.counter("index.backend.cache_evict").inc()
        return decoded

    def _decode_postings(self, offset: int, count: int) -> Tuple[Posting, ...]:
        start = self._data_start + offset
        chunk = self._mmap[start : start + count * _POSTING.size]
        paper_ids = self._paper_ids
        sections = self._sections
        return tuple(
            Posting(paper_ids[paper_idx], sections[section_idx], tf)
            for paper_idx, section_idx, tf in _POSTING.iter_unpack(chunk)
        )

    def document_frequency(self, term: str) -> int:
        entry = self._terms.get(term)
        return entry[0] if entry is not None else 0

    def papers_containing(self, term: str) -> List[str]:
        seen: Dict[str, None] = {}
        for posting in self.postings(term):
            seen.setdefault(posting.paper_id, None)
        return list(seen)

    # -- forward index -------------------------------------------------------------

    def _decode_forward(self, offset: int, count: int) -> Dict[str, int]:
        start = self._data_start + offset
        chunk = self._mmap[start : start + count * _FORWARD.size]
        term_list = self._term_list
        return {
            term_list[term_idx]: tf
            for term_idx, tf in _FORWARD.iter_unpack(chunk)
        }

    def term_frequency(
        self, paper_id: str, term: str, section: Optional[Section] = None
    ) -> int:
        paper_idx = self._paper_index.get(paper_id)
        if paper_idx is None:
            return 0
        runs = self._forward.get(paper_idx, ())
        if section is not None:
            section_idx = self._section_index.get(section)
            if section_idx is None:
                return 0
            for run_section, offset, count in runs:
                if run_section == section_idx:
                    return self._decode_forward(offset, count).get(term, 0)
            return 0
        return sum(
            self._decode_forward(offset, count).get(term, 0)
            for _, offset, count in runs
        )

    def paper_section_terms(
        self, paper_id: str, section: Section
    ) -> Mapping[str, int]:
        paper_idx = self._paper_index.get(paper_id)
        section_idx = self._section_index.get(section)
        if paper_idx is None or section_idx is None:
            return {}
        for run_section, offset, count in self._forward.get(paper_idx, ()):
            if run_section == section_idx:
                return self._decode_forward(offset, count)
        return {}

    # -- vocabulary ----------------------------------------------------------------

    def vocabulary(self) -> Sequence[str]:
        return self._term_list

    def __contains__(self, term: str) -> bool:
        return term in self._terms

    # -- observability -------------------------------------------------------------

    def backend_stats(self) -> Dict[str, float]:
        """Point-in-time stats exported as ``index.backend.*`` gauges."""
        with self._cache_lock:
            cached_terms = len(self._term_cache)
        return {
            "mapped_bytes": float(len(self._mmap)) if self._mmap else 0.0,
            "cached_terms": float(cached_terms),
        }

    def resident_postings_bytes(self) -> int:
        """Heap bytes held by decoded (cached) postings right now."""
        with self._cache_lock:
            cached = list(self._term_cache.values())
        total = 0
        for run in cached:
            total += sys.getsizeof(run)
            for posting in run:
                total += sys.getsizeof(posting) + sys.getsizeof(posting.__dict__)
        return total

    # -- (de)serialisation ---------------------------------------------------------

    def to_payload(self) -> Dict[str, Dict[str, Dict[str, int]]]:
        """Reconstruct the canonical per-paper snapshot (repack path).

        Decodes the full forward region -- this is the bulk escape
        hatch for converting an ondisk artifact back to other formats,
        not a serving-path operation.
        """
        papers: Dict[str, Dict[str, Dict[str, int]]] = {}
        for paper_idx, paper_id in enumerate(self._paper_ids):
            sections: Dict[str, Dict[str, int]] = {}
            for section_idx, offset, count in self._forward.get(paper_idx, ()):
                sections[self._sections[section_idx].value] = self._decode_forward(
                    offset, count
                )
            papers[paper_id] = sections
        return {"papers": papers}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"OndiskPostingsBackend({self._n_papers} papers, "
            f"{len(self._terms)} terms, {self._path.name})"
        )


def build_ondisk_index(
    corpus: Corpus, analyzer: Optional[Analyzer] = None
) -> InvertedIndex:
    """Build pass for the ondisk backend.

    Indexing is identical to the memory backend (the format only changes
    how postings are *persisted and opened*), so the build returns a
    regular in-memory index stamped ``backend_name='ondisk'`` -- the
    workspace save path then packs it with :func:`save_packed_index`.
    """
    index = InvertedIndex(analyzer=analyzer).index_corpus(corpus)
    index.backend_name = "ondisk"
    return index


def load_packed_index(
    path, analyzer: Optional[Analyzer] = None
) -> OndiskPostingsBackend:
    """Open a packed artifact: mmap + header parse, no postings decode."""
    return OndiskPostingsBackend(path, analyzer=analyzer)


SPEC = SearchBackendSpec(
    name="ondisk",
    build=build_ondisk_index,
    save=save_packed_index,
    load=load_packed_index,
    format_tag=ONDISK_FORMAT,
    description=(
        "Packed binary postings + term-offset table behind mmap; "
        "cold open parses only the header, terms decode lazily into a "
        "bounded LRU."
    ),
)
