"""Tracing spans: nesting, attributes, JSON-lines round-trip, ASCII tree.

Also covers the disabled fast path (no active tracer -> shared no-op
span) and the structured-logging formats, since logs and traces share
the observability contract documented in docs/observability.md.
"""

import io
import json
import logging

import pytest

from repro.obs import (
    NULL_SPAN,
    configure_logging,
    current_tracer,
    get_logger,
    read_trace_jsonl,
    span,
    start_tracing,
    stop_tracing,
)
from repro.obs.report import render_report, render_trace
from repro.obs.trace import Span


@pytest.fixture(autouse=True)
def no_leaked_tracer():
    stop_tracing()
    yield
    stop_tracing()


class TestSpanNesting:
    def test_parent_child_structure(self):
        tracer = start_tracing()
        with span("search.run", query="q") as run:
            with span("search.select") as select:
                select.set(probed=10)
            with span("search.score"):
                pass
            run.set(hits=3)
        stop_tracing()
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.name == "search.run"
        assert root.attrs == {"query": "q", "hits": 3}
        assert [child.name for child in root.children] == [
            "search.select", "search.score"
        ]
        assert root.children[0].attrs == {"probed": 10}

    def test_sibling_roots(self):
        tracer = start_tracing()
        with span("stage.one.run"):
            pass
        with span("stage.two.run"):
            pass
        stop_tracing()
        assert [root.name for root in tracer.roots] == [
            "stage.one.run", "stage.two.run"
        ]

    def test_durations_nonnegative_and_nested(self):
        tracer = start_tracing()
        with span("outer.stage.run"):
            with span("inner.stage.run"):
                pass
        stop_tracing()
        outer = tracer.roots[0]
        inner = outer.children[0]
        assert outer.duration >= inner.duration >= 0.0

    def test_exception_sets_error_attr_and_propagates(self):
        tracer = start_tracing()
        with pytest.raises(RuntimeError, match="boom"):
            with span("search.run"):
                raise RuntimeError("boom")
        stop_tracing()
        assert tracer.roots[0].attrs["error"] == "RuntimeError: boom"

    def test_decorator_form(self):
        @span("eval.decorated.run")
        def work(x):
            return x + 1

        tracer = start_tracing()
        assert work(1) == 2
        assert work(2) == 3
        stop_tracing()
        assert [root.name for root in tracer.roots] == [
            "eval.decorated.run", "eval.decorated.run"
        ]

    def test_decorator_sets_error_attr_on_raise(self):
        # The error= contract must hold in both forms: the
        # context-manager case is covered above, this is the decorator.
        @span("eval.decorated.run")
        def explode():
            raise ValueError("bad input")

        tracer = start_tracing()
        with pytest.raises(ValueError, match="bad input"):
            explode()
        stop_tracing()
        (root,) = tracer.roots
        assert root.attrs["error"] == "ValueError: bad input"
        assert root.duration >= 0.0


class TestDisabledFastPath:
    def test_span_yields_null_span_without_tracer(self):
        assert current_tracer() is None
        with span("search.run", query="q") as handle:
            assert handle is NULL_SPAN
            handle.set(anything="goes")  # must be a silent no-op

    def test_stop_tracing_returns_active_tracer(self):
        tracer = start_tracing()
        assert stop_tracing() is tracer
        assert stop_tracing() is None


class TestSerialisation:
    def test_jsonl_round_trip(self, tmp_path):
        tracer = start_tracing()
        with span("search.run", query="dna repair"):
            with span("search.select", strategy="probe"):
                pass
        with span("eval.other.run"):
            pass
        stop_tracing()
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(path)

        lines = path.read_text(encoding="utf-8").strip().splitlines()
        assert len(lines) == 2  # one root per line
        roots = read_trace_jsonl(path)
        assert roots[0]["name"] == "search.run"
        assert roots[0]["attrs"] == {"query": "dna repair"}
        assert roots[0]["children"][0]["name"] == "search.select"
        assert roots[0]["duration_ms"] >= 0.0
        assert roots[1] == json.loads(lines[1])

    def test_span_from_dict_rebuilds_tree(self):
        node = Span("a.b.c", {"k": 1})
        node.finish()
        rebuilt = Span.from_dict(node.to_dict())
        assert rebuilt.name == "a.b.c"
        assert rebuilt.attrs == {"k": 1}
        assert rebuilt.duration == pytest.approx(node.duration, abs=1e-3)


class TestAsciiTree:
    def test_tree_connectors_and_attrs(self):
        roots = [
            {
                "name": "search.run",
                "duration_ms": 5.0,
                "attrs": {"query": "q"},
                "children": [
                    {"name": "search.select", "duration_ms": 1.0, "attrs": {},
                     "children": []},
                    {"name": "search.merge", "duration_ms": 2.0,
                     "attrs": {"hits": 3}, "children": []},
                ],
            }
        ]
        tree = render_trace(roots)
        lines = tree.splitlines()
        assert lines[0] == "search.run  5.000ms  query=q"
        assert lines[1] == "|- search.select  1.000ms"
        assert lines[2] == "`- search.merge  2.000ms  hits=3"

    def test_empty_trace(self):
        assert render_trace([]) == "(no spans recorded)"

    def test_render_report_combines_sections(self, tmp_path):
        tracer = start_tracing()
        with span("search.run"):
            pass
        stop_tracing()
        trace_path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(trace_path)
        metrics_path = tmp_path / "metrics.json"
        metrics_path.write_text(
            json.dumps({"metrics": {"counters": {"a.b.c": 4}}}),
            encoding="utf-8",
        )
        report = render_report(trace_path=trace_path, metrics_path=metrics_path)
        assert "== trace:" in report
        assert "search.run" in report
        assert "== metrics:" in report
        assert "a.b.c" in report


class TestStructuredLogging:
    def _capture(self, json_format):
        stream = io.StringIO()
        configure_logging(json_format=json_format, stream=stream)
        return stream

    def teardown_method(self):
        # Leave the default (text, stderr) configuration behind.
        configure_logging(json_format=False)

    def test_text_format(self):
        stream = self._capture(json_format=False)
        get_logger("repro.test").warning("cap hit", iterations=200)
        line = stream.getvalue().strip()
        assert line == "WARNING repro.test: cap hit iterations=200"

    def test_json_format(self):
        stream = self._capture(json_format=True)
        get_logger("test_module").info("built", contexts=38, seconds=0.1)
        payload = json.loads(stream.getvalue().strip())
        assert payload["level"] == "info"
        assert payload["logger"] == "repro.test_module"  # re-rooted
        assert payload["event"] == "built"
        assert payload["contexts"] == 38
        assert payload["seconds"] == 0.1

    def test_reconfigure_replaces_handler(self):
        self._capture(json_format=False)
        stream = self._capture(json_format=True)
        get_logger("repro.test").info("once")
        # One handler only: exactly one line emitted.
        assert len(stream.getvalue().strip().splitlines()) == 1
        root = logging.getLogger("repro")
        obs_handlers = [
            h for h in root.handlers if getattr(h, "_obs_handler", False)
        ]
        assert len(obs_handlers) == 1
