"""Ablation A7 -- precision by query specificity.

The paper's 120 queries map to GO terms at various depths; its per-level
analyses (figures 5.3 and 5.5-5.7) suggest context depth matters.  This
bench stratifies the query workload by the *source term level* the query
was drawn from and reports precision per stratum: do specific (deep)
queries benefit more from context-based ranking than broad ones?
"""

from conftest import _env_int, write_result

from repro.datagen import generate_queries
from repro.eval.ac_answer import ACAnswerBuilder
from repro.eval.metrics import precision

THRESHOLD = 0.3
LEVEL_BANDS = ((2, 3), (4, 5), (6, 9))


def test_ablation_query_difficulty(benchmark, pipeline, dataset, results_dir):
    workload = generate_queries(
        dataset,
        n_queries=_env_int("REPRO_BENCH_QUERIES", 60),
        seed=_env_int("REPRO_BENCH_SEED", 42),
    )
    ac_builder = ACAnswerBuilder(
        pipeline.keyword_engine, pipeline.vectors, pipeline.citation_graph
    )
    engine = pipeline.search_engine("text", "text")

    def run():
        by_band = {band: [] for band in LEVEL_BANDS}
        for item in workload:
            level = dataset.ontology.level(item.source_term_id)
            band = next(
                (b for b in LEVEL_BANDS if b[0] <= level <= b[1]), None
            )
            if band is None:
                continue
            answers = ac_builder.build(item.query).papers
            hits = engine.search(item.query)
            surviving = [h.paper_id for h in hits if h.relevancy >= THRESHOLD]
            value = precision(surviving, answers)
            by_band[band].append(0.0 if value is None else value)
        return {
            band: (sum(values) / len(values), len(values))
            for band, values in by_band.items()
            if values
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert results, "no stratum received any query"

    lines = [f"text scores, precision at t={THRESHOLD} by source-term level:"]
    for (low, high), (avg, count) in sorted(results.items()):
        lines.append(
            f"  levels {low}-{high}: precision={avg:.3f}  ({count} queries)"
        )
    write_result(results_dir, "ablation_query_difficulty", "\n".join(lines))

    for avg, count in results.values():
        assert 0.0 <= avg <= 1.0
        assert count > 0
