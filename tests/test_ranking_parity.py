"""Golden-file ranking parity for the scoring/serving refactor.

``tests/data/golden_rankings.json`` was captured from the demo pipeline
*before* the score-function registry and the build/serve layer split, so
these tests pin the refactor's acceptance criterion: ``search``,
``search_grouped``, and ``explain`` must reproduce the pre-refactor
rankings bit for bit (floats survive the JSON round-trip exactly --
``json`` serialises with ``repr`` precision).

If a future change *intentionally* alters ranking semantics, regenerate
with ``PYTHONPATH=src python tools/gen_golden_rankings.py`` -- never to
paper over an unexplained diff.
"""

import json
from pathlib import Path

import pytest

from repro.pipeline import build_demo_pipeline

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_rankings.json"


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH, encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["format"] == "repro/golden-rankings/v1"
    return payload


@pytest.fixture(scope="module")
def pipeline(golden):
    demo = golden["demo"]
    return build_demo_pipeline(
        seed=demo["seed"], n_papers=demo["n_papers"], n_terms=demo["n_terms"]
    )


def _hit_rows(hits):
    return [
        [h.paper_id, h.context_id, h.relevancy, h.prestige, h.matching]
        for h in hits
    ]


def _combo_cases(golden):
    return sorted(golden["combos"])


class TestRankingParity:
    def test_golden_covers_every_seed_function(self, golden):
        functions = {combo.split("/")[0] for combo in golden["combos"]}
        assert {"citation", "hits", "text", "pattern"} <= functions

    def test_golden_has_nonempty_rankings(self, golden):
        nonempty = sum(
            1
            for per_query in golden["combos"].values()
            for record in per_query.values()
            if record["search"]
        )
        assert nonempty > 0

    def test_search_grouped_explain_match_golden(self, golden, pipeline):
        mismatches = []
        for combo in _combo_cases(golden):
            function, paper_set, strategy = combo.split("/")
            engine = pipeline.search_engine(function, paper_set, strategy)
            for query, expected in golden["combos"][combo].items():
                hits = engine.search(query, limit=10)
                if _hit_rows(hits) != expected["search"]:
                    mismatches.append((combo, query, "search"))
                    continue
                grouped = [
                    [
                        group.context_id,
                        group.selection_strength,
                        _hit_rows(group.hits),
                    ]
                    for group in engine.search_grouped(query, per_context_limit=5)
                ]
                if grouped != expected["grouped"]:
                    mismatches.append((combo, query, "grouped"))
                    continue
                explain_rows = []
                if hits:
                    explanation = engine.explain(query, hits[0].paper_id)
                    explain_rows = [
                        explanation.matching,
                        list(explanation.selected_context_ids),
                        [list(row) for row in explanation.in_selected_contexts],
                        explanation.best_relevancy,
                    ]
                if explain_rows != expected["explain"]:
                    mismatches.append((combo, query, "explain"))
        assert mismatches == []

    def test_pipeline_search_matches_engine_path(self, golden, pipeline):
        """The cached pipeline.search fast path returns the same rankings."""
        combo = next(
            c for c in _combo_cases(golden)
            if any(r["search"] for r in golden["combos"][c].values())
        )
        function, paper_set, strategy = combo.split("/")
        for query, expected in golden["combos"][combo].items():
            for use_cache in (True, True, False):  # miss, hit, bypass
                hits = pipeline.search(
                    query,
                    function=function,
                    paper_set_name=paper_set,
                    selection_strategy=strategy,
                    limit=10,
                    use_cache=use_cache,
                )
                assert _hit_rows(hits) == expected["search"], (query, use_cache)


class TestDeltaParity:
    """A delta-reached substrate ranks byte-identically to a scratch build.

    The incremental-update acceptance criterion: starting from a corpus
    that is missing the demo's last papers and carries extra transient
    ones, one ``apply_delta`` (removing the noise, adding the held-out
    papers) must land on a substrate whose rankings equal the golden
    files for *every* registered score function -- same floats, same
    order.  Prestige memos are warmed *before* the delta so the test
    exercises the per-context patch path, not a trivial cold rebuild.
    """

    HELD_OUT = 4

    @pytest.fixture(scope="class")
    def delta_outcome(self, golden, pipeline):
        from repro import scoring
        from repro.corpus.corpus import Corpus
        from repro.corpus.paper import Paper
        from repro.pipeline import Pipeline

        papers = list(pipeline.corpus)
        held_out = papers[-self.HELD_OUT:]
        base = Corpus()
        for paper in papers[: -self.HELD_OUT]:
            base.add(paper)
        noise = [
            Paper(
                paper_id=f"ZZNOISE{i:02d}",
                title="transient noise paper on ranking functions",
                abstract="temporarily present, removed by the delta",
                body="citation graph literature search context",
                references=(papers[i].paper_id,),
            )
            for i in range(3)
        ]
        for paper in noise:
            base.add(paper)
        delta_pipeline = Pipeline(
            corpus=base,
            ontology=pipeline.ontology,
            training_papers=pipeline.training_papers,
        )
        warmed = sorted(
            {tuple(combo.split("/")[:2]) for combo in golden["combos"]}
        )
        for function, paper_set in warmed:
            delta_pipeline.prestige(function, paper_set)
        report = delta_pipeline.substrates.apply_delta(
            added_papers=held_out,
            removed_ids=[paper.paper_id for paper in noise],
        )
        expected_patched = {
            f"{function}/{paper_set}"
            for function, paper_set in warmed
            if scoring.get(function).delta_scope == "contexts"
            and paper_set == "text"
        }
        return delta_pipeline, report, expected_patched

    def test_delta_report_shape(self, delta_outcome, pipeline):
        delta_pipeline, report, _ = delta_outcome
        assert len(report.added) == self.HELD_OUT
        assert len(report.removed) == 3
        # Final insertion order must equal the scratch corpus order --
        # the precondition for byte-identical downstream substrates.
        assert [p.paper_id for p in delta_pipeline.corpus] == [
            p.paper_id for p in pipeline.corpus
        ]

    def test_contexts_scoped_functions_were_patched_not_dropped(
        self, delta_outcome
    ):
        _, report, expected_patched = delta_outcome
        assert set(report.scores_patched) == expected_patched
        assert expected_patched, "delta must exercise the patch path"
        assert not expected_patched & set(report.scores_dropped)

    def test_delta_substrate_matches_golden_for_every_function(
        self, golden, delta_outcome
    ):
        delta_pipeline, _, _ = delta_outcome
        mismatches = []
        for combo in _combo_cases(golden):
            function, paper_set, strategy = combo.split("/")
            engine = delta_pipeline.search_engine(function, paper_set, strategy)
            for query, expected in golden["combos"][combo].items():
                hits = engine.search(query, limit=10)
                if _hit_rows(hits) != expected["search"]:
                    mismatches.append((combo, query, "search"))
                    continue
                grouped = [
                    [
                        group.context_id,
                        group.selection_strength,
                        _hit_rows(group.hits),
                    ]
                    for group in engine.search_grouped(query, per_context_limit=5)
                ]
                if grouped != expected["grouped"]:
                    mismatches.append((combo, query, "grouped"))
        assert mismatches == []


class TestBackendParity:
    """Every registered index backend must reproduce the golden rankings.

    The index artifact is round-tripped through each backend's codec and
    installed into the serving substrate; rankings for every golden
    combo/query must stay byte-identical.  This is the acceptance
    criterion of the backend split: storage layout must never be able to
    change what a query returns.
    """

    def test_every_registered_backend_matches_golden(
        self, golden, pipeline, tmp_path
    ):
        from repro.index import backends

        source = pipeline.index
        opened = []
        mismatches = []
        try:
            for spec in backends.specs():
                path = tmp_path / f"index_{spec.name}.json"
                spec.save(source, path)
                loaded = spec.load(path)
                opened.append(loaded)
                pipeline.substrates.install_index(loaded)
                for combo in _combo_cases(golden):
                    function, paper_set, strategy = combo.split("/")
                    engine = pipeline.search_engine(function, paper_set, strategy)
                    for query, expected in golden["combos"][combo].items():
                        hits = engine.search(query, limit=10)
                        if _hit_rows(hits) != expected["search"]:
                            mismatches.append((spec.name, combo, query))
        finally:
            pipeline.substrates.install_index(source)
            for loaded in opened:
                close = getattr(loaded, "close", None)
                if callable(close):
                    close()
        assert mismatches == []
