"""Unit tests for the keyword search engine."""

import pytest

from repro.corpus.corpus import Corpus
from repro.corpus.paper import Paper, Section
from repro.index.inverted import InvertedIndex
from repro.index.search import KeywordSearchEngine


@pytest.fixture
def corpus():
    return Corpus(
        [
            Paper(
                paper_id="P1",
                title="Gene expression regulation",
                abstract="How genes are regulated.",
                body="gene gene gene expression",
                year=2001,
            ),
            Paper(
                paper_id="P2",
                title="Protein structures",
                abstract="Gene mention once.",
                year=2004,
            ),
            Paper(
                paper_id="P3",
                title="Yeast metabolism",
                body="Nothing relevant here.",
                year=1998,
            ),
        ]
    )


@pytest.fixture
def engine(corpus):
    return KeywordSearchEngine(InvertedIndex().index_corpus(corpus))


class TestRankedSearch:
    def test_relevance_ordering(self, engine):
        hits = engine.search("gene expression")
        ids = [h.paper_id for h in hits]
        assert ids[0] == "P1"
        assert "P2" in ids
        assert "P3" not in ids

    def test_scores_in_unit_interval(self, engine):
        for hit in engine.search("gene expression regulation"):
            assert 0.0 <= hit.score <= 1.0

    def test_limit(self, engine):
        assert len(engine.search("gene", limit=1)) == 1

    def test_threshold_filters(self, engine):
        all_hits = engine.search("gene")
        strong = engine.search("gene", threshold=max(h.score for h in all_hits))
        assert len(strong) <= len(all_hits)
        assert all(h.score >= max(x.score for x in all_hits) for h in strong)

    def test_require_all_terms(self, engine):
        hits = engine.search("gene expression", require_all_terms=True)
        assert [h.paper_id for h in hits] == ["P1"]

    def test_empty_query(self, engine):
        assert engine.search("") == []

    def test_stopword_only_query(self, engine):
        assert engine.search("the of and") == []

    def test_unknown_terms(self, engine):
        assert engine.search("zebra quagga") == []

    def test_matched_terms_counted(self, engine):
        hits = {h.paper_id: h for h in engine.search("gene expression")}
        assert hits["P1"].matched_terms == 2
        assert hits["P2"].matched_terms == 1

    def test_deterministic_tie_break(self, engine):
        hits = engine.search("gene")
        assert hits == engine.search("gene")


class TestMatchScore:
    def test_match_score_bounds(self, engine):
        assert 0.0 <= engine.match_score("gene expression", "P1") <= 1.0

    def test_zero_for_no_match(self, engine):
        assert engine.match_score("zebra", "P1") == 0.0

    def test_zero_for_empty_query(self, engine):
        assert engine.match_score("", "P1") == 0.0

    def test_better_match_scores_higher(self, engine):
        assert engine.match_score("gene expression", "P1") > engine.match_score(
            "gene expression", "P2"
        )

    def test_consistent_with_search(self, engine):
        hits = {h.paper_id: h.score for h in engine.search("gene expression")}
        assert engine.match_score("gene expression", "P1") == pytest.approx(
            hits["P1"]
        )


class TestUnrankedSearch:
    def test_pubmed_ordering_by_year_desc(self, engine, corpus):
        result = engine.search_unranked("gene", corpus)
        assert result == ["P2", "P1"]  # 2004 before 2001

    def test_boolean_and(self, engine, corpus):
        assert engine.search_unranked("gene expression", corpus) == ["P1"]

    def test_no_results(self, engine, corpus):
        assert engine.search_unranked("zebra", corpus) == []

    def test_empty_query(self, engine, corpus):
        assert engine.search_unranked("", corpus) == []


class TestSectionWeights:
    def test_title_weight_dominates(self, corpus):
        index = InvertedIndex().index_corpus(corpus)
        title_heavy = KeywordSearchEngine(
            index, section_weights={Section.TITLE: 10.0}
        )
        hits = title_heavy.search("structures")
        assert hits[0].paper_id == "P2"


class TestSameYearTieBreak:
    @pytest.fixture
    def same_year_corpus(self):
        return Corpus(
            [
                Paper(paper_id="P10", title="gene alpha", year=2003),
                Paper(paper_id="P30", title="gene gamma", year=2003),
                Paper(paper_id="P20", title="gene beta", year=2003),
                Paper(paper_id="P05", title="gene delta", year=2001),
            ]
        )

    def test_same_year_papers_order_by_descending_id(self, same_year_corpus):
        # Regression: the docstring promises "latest first"; within a year
        # that means descending paper id, not ascending.
        engine = KeywordSearchEngine(
            InvertedIndex().index_corpus(same_year_corpus)
        )
        result = engine.search_unranked("gene", same_year_corpus)
        assert result == ["P30", "P20", "P10", "P05"]


class TestBm25LengthCacheInvalidation:
    def test_replacing_a_paper_invalidates_cached_lengths(self, corpus):
        # remove + add keeps n_papers stable, so a count-keyed cache would
        # serve stale section lengths; the revision counter must not.
        index = InvertedIndex().index_corpus(corpus)
        engine = KeywordSearchEngine(index, scoring="bm25")
        before = {h.paper_id: h.score for h in engine.search("gene")}
        index.remove_paper("P2")
        index.index_paper(
            Paper(
                paper_id="P2",
                title="Gene gene gene gene gene",
                abstract="gene gene gene gene gene gene",
                year=2004,
            )
        )
        assert index.n_papers == 3  # same count, different content
        after = {h.paper_id: h.score for h in engine.search("gene")}
        assert after != before
        # The fresh lengths must reflect the replacement exactly.
        rebuilt = KeywordSearchEngine(index, scoring="bm25")
        assert {h.paper_id: h.score for h in rebuilt.search("gene")} == after

    def test_lengths_cache_hits_counts_cached_queries(self, corpus):
        from repro.obs import reset_registry

        registry = reset_registry()
        engine = KeywordSearchEngine(
            InvertedIndex().index_corpus(corpus), scoring="bm25"
        )
        counters = lambda: registry.snapshot()["counters"].get(
            "index.keyword.lengths_cache_hits", 0
        )
        engine.search("gene")  # builds the tables: a miss
        assert counters() == 0
        engine.search("gene expression")
        engine.search("protein")
        assert counters() == 2  # one increment per cached query, not per posting
        reset_registry()
