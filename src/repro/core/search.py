"""The context-based search engine (tasks 3-5 of the paradigm).

Search proceeds exactly as section 5.1 describes:

1. *select contexts automatically based on the search term* -- contexts
   are ranked by how strongly their papers respond to a keyword probe of
   the query (weighted by hit score), with a bonus for query words
   appearing in the context term name;
2. *search within selected contexts* -- each paper in a selected context
   gets the section-3 relevancy score
       R(p, q, ci) = w_prestige * prestige(p, ci) + w_matching * match(p, q)
   and papers below the relevancy threshold are dropped;
3. *merge search results from different contexts into a single result
   set* -- a paper appearing in several contexts keeps its best relevancy.

Serving fast path: each query is analysed into one
:class:`~repro.index.search.QueryEvaluation` (a single postings scan)
that probe selection, relevancy scoring, grouped results, and
:meth:`ContextSearchEngine.explain` all share -- the index is never
scanned twice for one request.  Independent queries can be batched
through :meth:`ContextSearchEngine.search_many`, which fans out over a
thread pool (the registry and the engine's lazy caches are
thread-safe).
"""

from __future__ import annotations

import heapq
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.context import ContextPaperSet
from repro.core.scores.base import PrestigeScores
from repro.core.vectors import PaperVectorStore
from repro.index.search import KeywordSearchEngine, QueryEvaluation
from repro.obs import attach_span, current_span, get_registry, span
from repro.ontology.ontology import Ontology

#: Available context-selection strategies (task 3 of the paradigm):
#: - "probe": rank contexts by how strongly their papers respond to a
#:   keyword probe of the query (weighted by hit score) plus a term-name
#:   bonus -- the default, works for any paper set;
#: - "name": rank purely by overlap between query terms and the context
#:   term's name words -- cheapest, mirrors GoPubMed-style term lookup;
#: - "representative": rank by cosine similarity between the query vector
#:   and each context representative's full-text vector -- needs a vector
#:   store and a representatives map.
SELECTION_STRATEGIES = ("probe", "name", "representative")


@dataclass(frozen=True)
class SearchHit:
    """One merged search result."""

    paper_id: str
    context_id: str
    relevancy: float
    prestige: float
    matching: float


@dataclass(frozen=True)
class ContextSelection:
    """One selected context with its selection strength (diagnostics)."""

    context_id: str
    strength: float


@dataclass(frozen=True)
class ContextResultGroup:
    """Search results of one context, before cross-context merging.

    This is the presentation the paradigm actually envisions -- "search
    results in each context are ranked by their relevancy scores" -- with
    merging (:meth:`ContextSearchEngine.search`) as the flattened view.
    """

    context_id: str
    selection_strength: float
    hits: Tuple[SearchHit, ...]

    def __len__(self) -> int:
        return len(self.hits)


class ContextSearchEngine:
    """Context-based search over one context paper set + prestige scores.

    Parameters
    ----------
    w_prestige / w_matching:
        The relevancy mixture weights of section 3.  Defaults split evenly;
        experiments sweep them.
    probe_depth:
        How many keyword hits feed context selection.
    name_bonus:
        Additive bonus per query word found in a context's term name
        during selection.
    """

    def __init__(
        self,
        ontology: Ontology,
        paper_set: ContextPaperSet,
        prestige: PrestigeScores,
        keyword_engine: KeywordSearchEngine,
        w_prestige: float = 0.5,
        w_matching: float = 0.5,
        probe_depth: int = 200,
        name_bonus: float = 0.1,
        selection_strategy: str = "probe",
        vectors: "PaperVectorStore | None" = None,
        representatives: "dict | None" = None,
    ) -> None:
        if w_prestige < 0 or w_matching < 0 or (w_prestige + w_matching) == 0:
            raise ValueError(
                "w_prestige and w_matching must be >= 0 and not both zero"
            )
        if selection_strategy not in SELECTION_STRATEGIES:
            raise ValueError(
                f"selection_strategy must be one of {SELECTION_STRATEGIES}, "
                f"got {selection_strategy!r}"
            )
        if selection_strategy == "representative" and (
            vectors is None or not representatives
        ):
            raise ValueError(
                "the 'representative' strategy needs vectors and a "
                "non-empty representatives map"
            )
        self.ontology = ontology
        self.paper_set = paper_set
        self.prestige = prestige
        self.keyword_engine = keyword_engine
        self.w_prestige = w_prestige
        self.w_matching = w_matching
        self.probe_depth = probe_depth
        self.name_bonus = name_bonus
        self.selection_strategy = selection_strategy
        self.vectors = vectors
        self.representatives = dict(representatives) if representatives else {}
        self._name_terms: Dict[str, frozenset] = {}
        self._sqrt_size: Dict[str, float] = {}
        self._warm_lock = threading.Lock()
        self._warmed = False

    # -- engine warm-up ----------------------------------------------------------------

    def warm(self) -> "ContextSearchEngine":
        """Build the engine's lazy per-query caches up front.

        Called implicitly by :meth:`search_many` before fanning out so
        worker threads never race a lazy build; harmless to call twice.
        """
        with self._warm_lock:
            if self._warmed:
                return self
            analyzer = self.keyword_engine.index.analyzer
            for context in self.paper_set:
                self._name_terms[context.term_id] = frozenset(
                    analyzer.analyze(self.ontology.term(context.term_id).name)
                )
                self._sqrt_size[context.term_id] = max(context.size ** 0.5, 1.0)
                _ = context.paper_id_set
            # Force the paper -> contexts reverse map (lazy in the set).
            self.paper_set.contexts_of_paper("")
            self._warmed = True
        return self

    def _context_name_terms(self, context_id: str) -> frozenset:
        terms = self._name_terms.get(context_id)
        if terms is None:
            analyzer = self.keyword_engine.index.analyzer
            terms = frozenset(
                analyzer.analyze(self.ontology.term(context_id).name)
            )
            self._name_terms[context_id] = terms
        return terms

    # -- task 3: context selection ---------------------------------------------------

    def select_contexts(
        self, query: str, max_contexts: int = 5
    ) -> List[ContextSelection]:
        """Rank contexts for the query with the configured strategy."""
        evaluation = (
            self.keyword_engine.evaluate(query)
            if self.selection_strategy == "probe"
            else None
        )
        return self._select_contexts(query, max_contexts, evaluation)

    def _select_contexts(
        self,
        query: str,
        max_contexts: int,
        evaluation: Optional[QueryEvaluation],
    ) -> List[ContextSelection]:
        """Selection core; ``evaluation`` is the request's shared scan."""
        with span("search.select", strategy=self.selection_strategy) as trace:
            if self.selection_strategy == "name":
                selections = self._select_by_name(query, max_contexts)
            elif self.selection_strategy == "representative":
                selections = self._select_by_representative(query, max_contexts)
            else:
                assert evaluation is not None
                selections = self._select_by_probe(evaluation, max_contexts)
            trace.set(probed=len(self.paper_set), selected=len(selections))
        registry = get_registry()
        registry.counter("search.context.contexts_probed").inc(len(self.paper_set))
        registry.counter("search.context.contexts_selected").inc(len(selections))
        return selections

    def _select_by_probe(
        self, evaluation: QueryEvaluation, max_contexts: int
    ) -> List[ContextSelection]:
        """Rank contexts by keyword-probe response plus term-name overlap.

        Rather than walking every context's full member list, the probe
        walks only its top hits and accumulates strength through the
        paper-set's reverse (paper -> contexts) map -- O(probe_depth x
        avg contexts per paper) instead of O(total memberships).
        """
        probe = evaluation.top_scores(self.probe_depth)
        strengths: Dict[str, float] = {}
        contexts_of_paper = self.paper_set.contexts_of_paper
        for paper_id, score in probe:
            for context_id in contexts_of_paper(paper_id):
                strengths[context_id] = strengths.get(context_id, 0.0) + score
        query_terms = frozenset(evaluation.terms)
        for context_id in list(strengths):
            # Normalise by context size so huge contexts don't always win.
            sqrt_size = self._sqrt_size.get(context_id)
            if sqrt_size is None:
                size = self.paper_set.context(context_id).size
                sqrt_size = max(size ** 0.5, 1.0)
                self._sqrt_size[context_id] = sqrt_size
            strength = strengths[context_id] / sqrt_size
            if query_terms:
                name_terms = self._context_name_terms(context_id)
                strength += self.name_bonus * len(query_terms & name_terms)
            strengths[context_id] = strength
        return self._ranked_selections(strengths, max_contexts)

    def _select_by_name(
        self, query: str, max_contexts: int
    ) -> List[ContextSelection]:
        """Rank by query-term overlap with context term names only.

        The GoPubMed-style lookup the related-work section describes:
        cheap, but blind to contexts whose names share no word with the
        query.
        """
        analyzer = self.keyword_engine.index.analyzer
        query_terms = set(analyzer.analyze(query))
        if not query_terms:
            return []
        strengths: Dict[str, float] = {}
        for context in self.paper_set:
            name_terms = self._context_name_terms(context.term_id)
            shared = query_terms & name_terms
            if shared:
                strengths[context.term_id] = len(shared) / len(query_terms)
        return self._ranked_selections(strengths, max_contexts)

    def _select_by_representative(
        self, query: str, max_contexts: int
    ) -> List[ContextSelection]:
        """Rank by cosine similarity to each context's representative paper."""
        assert self.vectors is not None
        query_vector = self.vectors.query_vector(query)
        if not query_vector:
            return []
        strengths: Dict[str, float] = {}
        for context in self.paper_set:
            representative = self.representatives.get(context.term_id)
            if representative is None:
                continue
            similarity = query_vector.cosine(
                self.vectors.full_vector(representative)
            )
            if similarity > 0.0:
                strengths[context.term_id] = similarity
        return self._ranked_selections(strengths, max_contexts)

    @staticmethod
    def _ranked_selections(
        strengths: Dict[str, float], max_contexts: int
    ) -> List[ContextSelection]:
        ranked = heapq.nsmallest(
            max_contexts, strengths.items(), key=lambda item: (-item[1], item[0])
        )
        return [
            ContextSelection(context_id=cid, strength=value)
            for cid, value in ranked
        ]

    # -- tasks 4 & 5: search and rank -------------------------------------------------

    def search(
        self,
        query: str,
        max_contexts: int = 5,
        threshold: float = 0.0,
        limit: Optional[int] = None,
        contexts: Optional[Sequence[str]] = None,
    ) -> List[SearchHit]:
        """Full context-based search: select, score, threshold, merge.

        ``contexts`` overrides automatic selection (used by experiments
        that fix the context of interest).  The whole request shares one
        :class:`QueryEvaluation`, so the inverted index is scanned
        exactly once per call.
        """
        with span("search.run", query=query, threshold=threshold) as trace:
            evaluation = self.keyword_engine.evaluate(query)
            if contexts is None:
                selected = [
                    s.context_id
                    for s in self._select_contexts(query, max_contexts, evaluation)
                ]
            else:
                selected = [cid for cid in contexts if cid in self.paper_set]
            if not selected:
                trace.set(selected=0, hits=0)
                return []
            registry = get_registry()
            papers_scored = 0
            papers_dropped = 0
            merge_deduped = 0
            best: Dict[str, SearchHit] = {}
            with span("search.score", contexts=len(selected)) as score_trace:
                match_scores = evaluation.scores
                for context_id in selected:
                    context = self.paper_set.context(context_id)
                    context_prestige = self.prestige.of(context_id)
                    for paper_id, matching in self._context_matches(
                        context, match_scores
                    ):
                        # A paper with no textual response to the query is
                        # not a search result, however prestigious.
                        papers_scored += 1
                        prestige = context_prestige.get(paper_id, 0.0)
                        relevancy = (
                            self.w_prestige * prestige + self.w_matching * matching
                        )
                        if relevancy < threshold:
                            papers_dropped += 1
                            continue
                        current = best.get(paper_id)
                        if current is not None:
                            # Merge step: a paper already seen through an
                            # earlier context keeps its best relevancy.
                            merge_deduped += 1
                            if relevancy <= current.relevancy:
                                continue
                        best[paper_id] = SearchHit(
                            paper_id=paper_id,
                            context_id=context_id,
                            relevancy=relevancy,
                            prestige=prestige,
                            matching=matching,
                        )
                score_trace.set(
                    papers_scored=papers_scored, papers_dropped=papers_dropped
                )
            with span("search.merge") as merge_trace:
                hits = sorted(
                    best.values(), key=lambda h: (-h.relevancy, h.paper_id)
                )
                if limit is not None:
                    hits = hits[:limit]
                merge_trace.set(deduped=merge_deduped, hits=len(hits))
            trace.set(hits=len(hits))
            registry.counter("search.context.queries").inc()
            registry.counter("search.context.papers_scored").inc(papers_scored)
            registry.counter("search.context.papers_dropped").inc(papers_dropped)
            registry.counter("search.context.merge_deduped").inc(merge_deduped)
            return hits

    @staticmethod
    def _context_matches(context, match_scores):
        """(paper_id, matching) pairs of one context, iterating the smaller side.

        When the context is larger than the query's match set, walking the
        match set and testing membership is cheaper than walking every
        member; both directions yield each matched (paper, score) pair
        exactly once, so metrics and merge results are identical.
        """
        if len(context.paper_ids) <= len(match_scores):
            for paper_id in context.paper_ids:
                matching = match_scores.get(paper_id, 0.0)
                if matching > 0.0:
                    yield paper_id, matching
        else:
            members = context.paper_id_set
            for paper_id, matching in match_scores.items():
                if matching > 0.0 and paper_id in members:
                    yield paper_id, matching

    def search_many(
        self,
        queries: Sequence[str],
        max_workers: int = 4,
        **kwargs,
    ) -> List[List[SearchHit]]:
        """Run independent queries concurrently; results in input order.

        Queries fan out over a thread pool after :meth:`warm` has built
        every lazy cache, so workers only read shared state.  Each query
        runs the same single-scan path as :meth:`search` and increments
        every metric exactly once.  The batch span is handed to every
        worker via :func:`repro.obs.attach_span`, so per-query
        ``search.run`` spans stay children of ``search.batch.run``
        instead of becoming orphan roots of the tracer's per-thread
        stacks.  ``kwargs`` are passed through to :meth:`search`.
        """
        queries = list(queries)
        if not queries:
            return []
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.warm()
        registry = get_registry()
        registry.counter("search.batch.queries").inc(len(queries))
        with span(
            "search.batch.run", queries=len(queries), workers=max_workers
        ), registry.timer("search.batch.seconds"):
            if max_workers == 1 or len(queries) == 1:
                return [self.search(query, **kwargs) for query in queries]
            parent = current_span()

            def run_one(query: str) -> List[SearchHit]:
                with attach_span(parent):
                    return self.search(query, **kwargs)

            with ThreadPoolExecutor(max_workers=max_workers) as pool:
                return list(pool.map(run_one, queries))

    def search_grouped(
        self,
        query: str,
        max_contexts: int = 5,
        threshold: float = 0.0,
        per_context_limit: Optional[int] = None,
    ) -> List[ContextResultGroup]:
        """Search and return results *grouped by context* (unmerged).

        Groups come back in selection-strength order; a paper appearing in
        several selected contexts appears in each group with that
        context's prestige.  Empty groups (no paper cleared the threshold)
        are dropped.  Shares one :class:`QueryEvaluation` between
        selection and scoring, like :meth:`search`.
        """
        evaluation = self.keyword_engine.evaluate(query)
        selections = self._select_contexts(query, max_contexts, evaluation)
        if not selections:
            return []
        match_scores = evaluation.scores
        groups: List[ContextResultGroup] = []
        for selection in selections:
            context = self.paper_set.context(selection.context_id)
            context_prestige = self.prestige.of(selection.context_id)
            hits = []
            for paper_id, matching in self._context_matches(context, match_scores):
                prestige = context_prestige.get(paper_id, 0.0)
                relevancy = (
                    self.w_prestige * prestige + self.w_matching * matching
                )
                if relevancy < threshold:
                    continue
                hits.append(
                    SearchHit(
                        paper_id=paper_id,
                        context_id=selection.context_id,
                        relevancy=relevancy,
                        prestige=prestige,
                        matching=matching,
                    )
                )
            hits.sort(key=lambda h: (-h.relevancy, h.paper_id))
            if per_context_limit is not None:
                hits = hits[:per_context_limit]
            if hits:
                groups.append(
                    ContextResultGroup(
                        context_id=selection.context_id,
                        selection_strength=selection.strength,
                        hits=tuple(hits),
                    )
                )
        return groups

    def result_ids(self, query: str, **kwargs) -> List[str]:
        """Convenience: just the merged paper ids, best first."""
        return [hit.paper_id for hit in self.search(query, **kwargs)]

    # -- explanation -------------------------------------------------------------------

    def explain(
        self, query: str, paper_id: str, max_contexts: int = 5
    ) -> "RankingExplanation":
        """Why (or why not) ``paper_id`` ranks for ``query``.

        Returns the matching score, the paper's prestige in every selected
        context that contains it, the winning context, and the resulting
        relevancy -- the decomposition a relevance engineer needs when a
        ranking surprises them.  Selection and matching read the same
        single-scan evaluation, so the explanation shows exactly the
        scores :meth:`search` would use (quoted-phrase filters included).
        """
        evaluation = self.keyword_engine.evaluate(query)
        selections = self._select_contexts(query, max_contexts, evaluation)
        matching = evaluation.score(paper_id)
        per_context: List[Tuple[str, float, float]] = []
        for selection in selections:
            context = self.paper_set.context(selection.context_id)
            if paper_id not in context:
                continue
            prestige = self.prestige.score(selection.context_id, paper_id)
            relevancy = self.w_prestige * prestige + self.w_matching * matching
            per_context.append((selection.context_id, prestige, relevancy))
        per_context.sort(key=lambda row: (-row[2], row[0]))
        return RankingExplanation(
            query=query,
            paper_id=paper_id,
            matching=matching,
            selected_context_ids=tuple(s.context_id for s in selections),
            in_selected_contexts=tuple(per_context),
            best_relevancy=per_context[0][2] if per_context else None,
        )


@dataclass(frozen=True)
class RankingExplanation:
    """Relevancy decomposition for one (query, paper) pair."""

    query: str
    paper_id: str
    matching: float
    #: Every context the selector chose for this query.
    selected_context_ids: Tuple[str, ...]
    #: (context_id, prestige, relevancy) for selected contexts holding
    #: the paper, best first.
    in_selected_contexts: Tuple[Tuple[str, float, float], ...]
    #: Relevancy in the winning context; None when the paper is in no
    #: selected context (it cannot appear in results at all).
    best_relevancy: Optional[float]

    @property
    def retrievable(self) -> bool:
        """Could this paper appear in the merged results for the query?"""
        return self.best_relevancy is not None and self.matching > 0.0

    def format(self) -> str:
        lines = [
            f"query={self.query!r} paper={self.paper_id}",
            f"  text matching score: {self.matching:.3f}",
            f"  selected contexts:   {', '.join(self.selected_context_ids) or '(none)'}",
        ]
        if not self.in_selected_contexts:
            lines.append("  paper is in NO selected context -> never returned")
        for context_id, prestige, relevancy in self.in_selected_contexts:
            lines.append(
                f"  in {context_id}: prestige={prestige:.3f} -> relevancy={relevancy:.3f}"
            )
        if not self.retrievable:
            lines.append("  verdict: not retrievable for this query")
        return "\n".join(lines)
