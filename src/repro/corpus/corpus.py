"""The corpus container: papers plus derived lookup structures."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.corpus.paper import Paper


class CorpusError(ValueError):
    """Raised for duplicate ids and lookups of unknown papers."""


class Corpus:
    """An in-memory collection of :class:`Paper` with citation/author indexes.

    The container is append-only: papers can be added until the first
    consumer asks for a derived index, after which it is conventionally
    treated as frozen (derived indexes are built lazily and cached; adding
    papers afterwards invalidates them automatically).
    """

    def __init__(self, papers: Optional[Iterable[Paper]] = None) -> None:
        self._papers: Dict[str, Paper] = {}
        self._outgoing: Optional[Dict[str, Tuple[str, ...]]] = None
        self._incoming: Optional[Dict[str, Tuple[str, ...]]] = None
        self._by_author: Optional[Dict[str, Tuple[str, ...]]] = None
        if papers is not None:
            for paper in papers:
                self.add(paper)

    # -- construction -----------------------------------------------------------

    def add(self, paper: Paper) -> None:
        """Add one paper; duplicate ids are an error."""
        if paper.paper_id in self._papers:
            raise CorpusError(f"duplicate paper id {paper.paper_id!r}")
        self._papers[paper.paper_id] = paper
        self._invalidate()

    def remove(self, paper_id: str) -> Paper:
        """Remove and return one paper; unknown ids are an error.

        Later insertions keep their relative order, so a corpus that
        removes papers and then adds new ones iterates identically to a
        corpus constructed from the surviving papers in the same order.
        """
        try:
            paper = self._papers.pop(paper_id)
        except KeyError:
            raise CorpusError(f"unknown paper id {paper_id!r}") from None
        self._invalidate()
        return paper

    def _invalidate(self) -> None:
        self._outgoing = None
        self._incoming = None
        self._by_author = None

    # -- basic access -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._papers)

    def __contains__(self, paper_id: str) -> bool:
        return paper_id in self._papers

    def __iter__(self) -> Iterator[Paper]:
        return iter(self._papers.values())

    def paper(self, paper_id: str) -> Paper:
        """Return the paper with ``paper_id`` (CorpusError if absent)."""
        try:
            return self._papers[paper_id]
        except KeyError:
            raise CorpusError(f"unknown paper id {paper_id!r}") from None

    def paper_ids(self) -> List[str]:
        """All paper ids in insertion order."""
        return list(self._papers)

    # -- citation structure ---------------------------------------------------------

    def references_of(self, paper_id: str) -> Tuple[str, ...]:
        """*Resolvable* references of a paper (dangling refs dropped).

        A real parse of 72k full-text papers yields many references to
        papers outside the downloaded set; like the paper's testbed we keep
        only edges where both endpoints are in the corpus.
        """
        self._ensure_citation_maps()
        assert self._outgoing is not None
        return self._outgoing.get(paper_id, ())

    def citations_of(self, paper_id: str) -> Tuple[str, ...]:
        """Ids of corpus papers citing ``paper_id``."""
        self._ensure_citation_maps()
        assert self._incoming is not None
        return self._incoming.get(paper_id, ())

    def dangling_references(self) -> Dict[str, Tuple[str, ...]]:
        """References pointing outside the corpus, per paper (diagnostics)."""
        result: Dict[str, Tuple[str, ...]] = {}
        for paper in self:
            missing = tuple(r for r in paper.references if r not in self._papers)
            if missing:
                result[paper.paper_id] = missing
        return result

    def _ensure_citation_maps(self) -> None:
        if self._outgoing is not None:
            return
        outgoing: Dict[str, Tuple[str, ...]] = {}
        incoming_lists: Dict[str, List[str]] = {pid: [] for pid in self._papers}
        for paper in self._papers.values():
            resolvable = tuple(
                ref
                for ref in paper.references
                if ref in self._papers and ref != paper.paper_id
            )
            outgoing[paper.paper_id] = resolvable
            for ref in resolvable:
                incoming_lists[ref].append(paper.paper_id)
        self._outgoing = outgoing
        self._incoming = {pid: tuple(v) for pid, v in incoming_lists.items()}

    # -- author structure -------------------------------------------------------------

    def papers_by_author(self, author: str) -> Tuple[str, ...]:
        """Ids of papers with ``author`` in their author list."""
        self._ensure_author_index()
        assert self._by_author is not None
        return self._by_author.get(author, ())

    def authors(self) -> List[str]:
        """All distinct author names, sorted."""
        self._ensure_author_index()
        assert self._by_author is not None
        return sorted(self._by_author)

    def coauthors_of(self, paper_id: str) -> Set[str]:
        """Authors who co-wrote *any* paper with any author of ``paper_id``.

        This is the "third paper" relation behind Level-1 author overlap
        (section 3.2): authors(p) ∪-expanded one co-authorship hop.
        """
        self._ensure_author_index()
        assert self._by_author is not None
        result: Set[str] = set()
        for author in self.paper(paper_id).authors:
            for other_id in self._by_author.get(author, ()):
                result.update(self._papers[other_id].authors)
        result.difference_update(self.paper(paper_id).authors)
        return result

    def _ensure_author_index(self) -> None:
        if self._by_author is not None:
            return
        index: Dict[str, List[str]] = {}
        for paper in self._papers.values():
            for author in dict.fromkeys(paper.authors):  # dedupe, keep order
                index.setdefault(author, []).append(paper.paper_id)
        self._by_author = {name: tuple(ids) for name, ids in index.items()}

    # -- bulk views ---------------------------------------------------------------------

    def subset(self, paper_ids: Iterable[str]) -> "Corpus":
        """A new corpus containing only ``paper_ids`` (order preserved)."""
        return Corpus(self.paper(pid) for pid in paper_ids)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Corpus({len(self)} papers)"
