"""Failure-injection tests: degenerate inputs across the whole pipeline.

Every scenario here is something a real deployment hits: papers with no
parseable text, reference lists full of dangling ids, contexts that end
up empty, queries that match nothing, and corpora too small for any
statistics.
"""

import pytest

from repro.citations.graph import CitationGraph
from repro.core.assignment import PatternContextAssigner, TextContextAssigner
from repro.core.context import Context, ContextPaperSet
from repro.core.patterns import AnalyzedPaperCache, PatternSetBuilder
from repro.core.scores import CitationPrestige, PatternPrestige, TextPrestige
from repro.core.search import ContextSearchEngine
from repro.core.vectors import PaperVectorStore
from repro.corpus.corpus import Corpus
from repro.corpus.paper import Paper
from repro.eval.ac_answer import ACAnswerBuilder
from repro.index.inverted import InvertedIndex
from repro.index.search import KeywordSearchEngine
from repro.ontology.ontology import Ontology
from repro.ontology.term import Term
from repro.pipeline import Pipeline


@pytest.fixture
def degenerate_corpus():
    """Papers with empty sections, punctuation-only text, dangling refs."""
    return Corpus(
        [
            Paper(paper_id="EMPTY", title=""),
            Paper(paper_id="PUNCT", title="!!! ??? ...", abstract="---"),
            Paper(
                paper_id="DANGLE",
                title="dangling references study",
                references=("GONE1", "GONE2", "GONE3"),
            ),
            Paper(
                paper_id="OK",
                title="glucose metabolism analysis",
                abstract="a real abstract about glucose metabolism",
                body="glucose metabolism body text with content",
                authors=("A. Author",),
                references=("DANGLE",),
            ),
        ]
    )


@pytest.fixture
def flat_ontology():
    return Ontology(
        [
            Term("root", "process"),
            Term("t1", "glucose process", parent_ids=("root",)),
        ]
    )


class TestDegenerateCorpus:
    def test_indexing_survives_empty_papers(self, degenerate_corpus):
        index = InvertedIndex().index_corpus(degenerate_corpus)
        assert index.n_papers == 4
        assert index.papers_containing("glucos") == ["OK"]

    def test_search_over_degenerate_corpus(self, degenerate_corpus):
        engine = KeywordSearchEngine(InvertedIndex().index_corpus(degenerate_corpus))
        hits = engine.search("glucose")
        assert [h.paper_id for h in hits] == ["OK"]

    def test_vectors_of_empty_paper(self, degenerate_corpus):
        vectors = PaperVectorStore(degenerate_corpus)
        assert len(vectors.full_vector("EMPTY")) == 0
        assert vectors.full_similarity("EMPTY", "OK") == 0.0

    def test_citation_graph_drops_dangling(self, degenerate_corpus):
        graph = CitationGraph.from_corpus(degenerate_corpus)
        assert set(graph.nodes()) == {"EMPTY", "PUNCT", "DANGLE", "OK"}
        assert list(graph.edges()) == [("OK", "DANGLE")]

    def test_text_assignment_with_textless_training(
        self, degenerate_corpus, flat_ontology
    ):
        index = InvertedIndex().index_corpus(degenerate_corpus)
        vectors = PaperVectorStore(degenerate_corpus, index.analyzer)
        assigner = TextContextAssigner(
            degenerate_corpus, flat_ontology, vectors, index
        )
        # Training paper has no text: context still built, membership is
        # just the training paper itself.
        paper_set = assigner.build({"t1": ["EMPTY"]})
        assert paper_set.context("t1").paper_ids == ("EMPTY",)

    def test_pattern_assignment_with_textless_training(
        self, degenerate_corpus, flat_ontology
    ):
        index = InvertedIndex().index_corpus(degenerate_corpus)
        assigner = PatternContextAssigner(
            degenerate_corpus, flat_ontology, index, max_middle_coverage=1.0
        )
        paper_set = assigner.build({"t1": ["EMPTY", "PUNCT"]})
        # Patterns from textless papers may be empty; builder must not crash.
        assert isinstance(len(paper_set), int)

    def test_ac_answer_for_unanswerable_query(self, degenerate_corpus):
        index = InvertedIndex().index_corpus(degenerate_corpus)
        builder = ACAnswerBuilder(
            KeywordSearchEngine(index),
            PaperVectorStore(degenerate_corpus, index.analyzer),
            CitationGraph.from_corpus(degenerate_corpus),
        )
        answer = builder.build("nonexistent vocabulary entirely")
        assert len(answer) == 0


class TestDegenerateContexts:
    def test_scores_on_empty_context(self, degenerate_corpus, flat_ontology):
        graph = CitationGraph.from_corpus(degenerate_corpus)
        scorer = CitationPrestige(graph)
        assert scorer.score_context(Context("t1", ())) == {}

    def test_score_all_skips_unscorable_contexts(
        self, degenerate_corpus, flat_ontology
    ):
        paper_set = ContextPaperSet(
            flat_ontology,
            [Context("t1", ()), Context("root", ("OK",))],
        )
        graph = CitationGraph.from_corpus(degenerate_corpus)
        scores = CitationPrestige(graph).score_all(paper_set)
        assert "t1" not in scores
        assert "root" in scores

    def test_pattern_prestige_with_empty_pattern_sets(self, degenerate_corpus):
        cache = AnalyzedPaperCache(degenerate_corpus)
        scorer = PatternPrestige({}, cache)
        assert scorer.score_context(Context("root", ("OK",))) == {}

    def test_text_prestige_representative_missing_from_corpus(
        self, degenerate_corpus, flat_ontology
    ):
        index = InvertedIndex().index_corpus(degenerate_corpus)
        vectors = PaperVectorStore(degenerate_corpus, index.analyzer)
        graph = CitationGraph.from_corpus(degenerate_corpus)
        scorer = TextPrestige(
            degenerate_corpus, vectors, graph, {"t1": "NOT_IN_CORPUS"}
        )
        assert scorer.score_context(Context("t1", ("OK",))) == {}


class TestDegenerateSearch:
    def test_search_with_empty_prestige(self, degenerate_corpus, flat_ontology):
        from repro.core.scores.base import PrestigeScores

        index = InvertedIndex().index_corpus(degenerate_corpus)
        paper_set = ContextPaperSet(flat_ontology, [Context("t1", ("OK",))])
        engine = ContextSearchEngine(
            flat_ontology,
            paper_set,
            PrestigeScores("text", {}),
            KeywordSearchEngine(index),
        )
        hits = engine.search("glucose")
        # Matching still works; prestige defaults to 0.
        assert hits
        assert hits[0].prestige == 0.0

    def test_single_paper_pipeline(self, flat_ontology):
        corpus = Corpus(
            [
                Paper(
                    paper_id="ONLY",
                    title="glucose process study",
                    abstract="glucose",
                    body="glucose process",
                )
            ]
        )
        pipeline = Pipeline(
            corpus=corpus,
            ontology=flat_ontology,
            training_papers={"t1": ["ONLY"]},
            min_context_size=1,
        )
        hits = pipeline.search("glucose")
        assert [h.paper_id for h in hits] == ["ONLY"]

    def test_pattern_builder_window_zero(self, degenerate_corpus, flat_ontology):
        index = InvertedIndex().index_corpus(degenerate_corpus)
        builder = PatternSetBuilder(
            flat_ontology, degenerate_corpus, index, window=0
        )
        pattern_set = builder.build("t1", ["OK"])
        for pattern in pattern_set.patterns:
            assert pattern.left == ()
            assert pattern.right == ()
