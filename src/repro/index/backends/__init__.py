"""Pluggable index backends (see :mod:`repro.index.backends.registry`).

Importing this package registers the built-ins:

- ``memory`` -- the in-RAM :class:`~repro.index.inverted.InvertedIndex`
  with its original JSON codec (the default);
- ``ondisk`` -- packed binary postings opened via ``mmap`` with lazy
  per-term decode (:mod:`repro.index.backends.ondisk`).

Third-party backends register a :class:`SearchBackendSpec` through
:func:`register` (or :func:`temporary_registration`) and immediately
surface in ``repro build/search --index-backend``, the workspace index
artifact, and the serving substrate -- no core edits.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Optional

from repro.index.backends import memory as _memory
from repro.index.backends import ondisk as _ondisk
from repro.index.backends.base import SearchBackend
from repro.index.backends.registry import (
    DEFAULT_BACKEND,
    SearchBackendSpec,
    backend_names,
    get,
    is_registered,
    register,
    registry_revision,
    spec_for_format,
    specs,
    temporary_registration,
    unregister,
)

register(_memory.SPEC)
register(_ondisk.SPEC)

#: Every codec writes ``{"format": "<tag>", ...}`` as the artifact's
#: first key, so the owning backend is identified from the file head
#: without parsing the (potentially huge) document.
_FORMAT_HEAD_RE = re.compile(r'"format"\s*:\s*"([^"]+)"')
_SNIFF_BYTES = 512


def sniff_format(path) -> Optional[str]:
    """The format tag at the head of ``path`` (None when unreadable)."""
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as handle:
            head = handle.read(_SNIFF_BYTES)
    except OSError:
        return None
    match = _FORMAT_HEAD_RE.search(head)
    return match.group(1) if match else None


def sniff_backend(path) -> Optional[str]:
    """Name of the registered backend owning the artifact at ``path``."""
    format_tag = sniff_format(path)
    if format_tag is None:
        return None
    try:
        return spec_for_format(format_tag).name
    except ValueError:
        return None


def open_index(path, analyzer=None) -> SearchBackend:
    """Open an index artifact with whichever backend's codec wrote it.

    This is the workspace load path: the artifact file self-describes
    its backend via the format tag, so a workspace built with
    ``--index-backend ondisk`` opens lazily even when the reading
    process configured a different default.
    """
    path = Path(path)
    format_tag = sniff_format(path)
    if format_tag is None:
        raise ValueError(
            f"{path}: cannot determine index format "
            "(missing or unreadable format tag)"
        )
    return spec_for_format(format_tag).load(path, analyzer=analyzer)


def save_index(index, path) -> None:
    """Persist ``index`` through the codec of the backend that made it.

    Objects built or loaded by a registered backend carry a
    ``backend_name`` stamp; anything unstamped round-trips through the
    default (memory) codec.
    """
    name = getattr(index, "backend_name", DEFAULT_BACKEND)
    get(name).save(index, path)


__all__ = [
    "DEFAULT_BACKEND",
    "SearchBackend",
    "SearchBackendSpec",
    "backend_names",
    "get",
    "is_registered",
    "open_index",
    "register",
    "registry_revision",
    "save_index",
    "sniff_backend",
    "sniff_format",
    "spec_for_format",
    "specs",
    "temporary_registration",
    "unregister",
]
