"""Ablation A1 -- the two teleport terms of section 3.1 (E1 vs E2) and a
damping sweep.

Section 3.1 offers ``E1 = d`` (constant) and ``E2 = (d/N) 1 P_i``
(uniform redistribution) without choosing.  This bench verifies the
choice is immaterial for ranking -- the two fixed points order papers
identically on real per-context subgraphs -- and reports convergence
iterations across damping values.
"""

from conftest import write_result

from repro.citations.pagerank import TeleportKind, pagerank
from repro.eval.metrics import topk_overlap


def _contexts_with_edges(pipeline, limit=25):
    graph = pipeline.citation_graph
    chosen = []
    for context in pipeline.experiment_paper_set("pattern"):
        subgraph = graph.subgraph(context.paper_ids)
        if subgraph.n_edges >= 5:
            chosen.append(subgraph)
        if len(chosen) >= limit:
            break
    return chosen


def test_ablation_pagerank_teleport_and_damping(benchmark, pipeline, results_dir):
    subgraphs = _contexts_with_edges(pipeline)
    assert subgraphs, "no context subgraph with enough edges"

    def run():
        overlaps = []
        iteration_rows = []
        for subgraph in subgraphs:
            e1 = pagerank(subgraph, teleport=TeleportKind.E1_CONSTANT)
            e2 = pagerank(subgraph, teleport=TeleportKind.E2_UNIFORM)
            value = topk_overlap(e1.scores, e2.scores, k_percent=0.1)
            if value is not None:
                overlaps.append(value)
        for d in (0.05, 0.15, 0.30, 0.50):
            iterations = [
                pagerank(subgraph, d=d).iterations for subgraph in subgraphs
            ]
            iteration_rows.append((d, sum(iterations) / len(iterations)))
        return overlaps, iteration_rows

    overlaps, iteration_rows = benchmark.pedantic(run, rounds=1, iterations=1)

    mean_overlap = sum(overlaps) / len(overlaps)
    lines = [
        f"contexts sampled:            {len(subgraphs)}",
        f"E1-vs-E2 top-10% overlap:    {mean_overlap:.3f}",
        "damping sweep (d -> mean iterations to converge):",
    ]
    for d, iterations in iteration_rows:
        lines.append(f"  d={d:.2f}: {iterations:.1f}")
    write_result(results_dir, "ablation_pagerank", "\n".join(lines))

    assert mean_overlap > 0.9, "E1 and E2 must produce near-identical rankings"
    # Stronger teleport converges faster.
    assert iteration_rows[-1][1] <= iteration_rows[0][1]
