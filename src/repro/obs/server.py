"""Stdlib HTTP exposition endpoint: ``/metrics``, ``/health``, ``/slo``.

The observability substrate the search service mounts --
``repro obs serve --port 9188`` runs it standalone today, and
:class:`repro.serving.service.SearchService` subclasses it to add the
query endpoints on the same listener.  Routes:

- ``GET /metrics``  -- Prometheus text exposition of the process-wide
  registry (:mod:`repro.obs.prom`);
- ``GET /health``   -- JSON liveness: status, uptime, serving-view
  revision/age when a pipeline is attached;
- ``GET /slo``      -- JSON list of declared objectives evaluated over
  the rolling window (:mod:`repro.obs.slo`), with error budgets;
- ``GET /slowlog``  -- JSON dump of the slow-query log (slowest first).

Built on :class:`http.server.ThreadingHTTPServer` so a slow scraper
cannot block a health probe.  *Collectors* -- zero-arg callables such as
``ServingView.export_gauges`` -- run at the top of every scrape, which is
how point-in-time gauges (view age, cache hit rate) stay current without
a background refresher thread.

Routing lives in :meth:`ExpositionServer.dispatch`, which maps
``(method, path, params)`` to a :class:`Response`; subclasses add
endpoints by overriding it and falling back to ``super().dispatch``
for everything they don't handle.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.parse
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.obs.logs import get_logger
from repro.obs.metrics import get_registry
from repro.obs.prom import render_prometheus
from repro.obs.request import get_telemetry

__all__ = ["ExpositionServer", "Response", "json_response"]

_log = get_logger("obs.server")


@dataclass(frozen=True)
class Response:
    """One HTTP response as the dispatch layer produces it."""

    status: int
    content_type: str
    body: str
    headers: Dict[str, str] = field(default_factory=dict)


def json_response(
    payload: Dict[str, Any], status: int = 200, **headers: str
) -> Response:
    """A sorted-key JSON response (the service's canonical encoding)."""
    return Response(
        status=status,
        content_type="application/json",
        body=json.dumps(payload, sort_keys=True) + "\n",
        headers={key.replace("_", "-"): value for key, value in headers.items()},
    )


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-obs/1"
    #: Set by ExpositionServer on the server instance; read via self.server.
    exposition: "ExpositionServer"

    def _handle(self, method: str) -> None:
        exposition = self.server.exposition  # type: ignore[attr-defined]
        parsed = urllib.parse.urlsplit(self.path)
        path = parsed.path.rstrip("/") or "/"
        params = urllib.parse.parse_qs(parsed.query)
        try:
            length = int(self.headers.get("Content-Length") or 0)
            body = self.rfile.read(length).decode("utf-8") if length > 0 else None
            response = exposition.dispatch(method, path, params, body)
            if response is None:
                response = json_response(
                    {"error": f"no route {method} {path!r}"}, status=404
                )
        except Exception as error:  # surface handler bugs to the scraper
            response = json_response(
                {"error": f"{type(error).__name__}: {error}"}, status=500
            )
        self._respond(response)

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        self._handle("POST")

    def _respond(self, response: Response) -> None:
        payload = response.body.encode("utf-8")
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(payload)))
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args: Any) -> None:
        _log.debug("http.request", detail=format % args)


class ExpositionServer:
    """Owns the HTTP server plus the scrape-time gauge collectors.

    ``port=0`` binds an ephemeral port (tests); the socket is bound in
    the constructor, so :attr:`port` reflects the *actual* bound port
    from construction on -- never the ``0`` that was asked for.
    ``allow_reuse_address`` is set before the bind, so a stop/start
    cycle on the same port cannot intermittently fail with
    ``EADDRINUSE`` while the old socket lingers in ``TIME_WAIT``.
    ``collectors`` run (exceptions swallowed per collector) before every
    ``/metrics`` scrape and ``/health`` probe so exported gauges reflect
    scrape time.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 9188,
        collectors: Sequence[Callable[[], Any]] = (),
        health_info: Optional[Callable[[], Dict[str, Any]]] = None,
    ) -> None:
        self.collectors = list(collectors)
        self.health_info = health_info
        self.started_at = time.monotonic()
        # Bind in two steps so socket options are set *before* bind():
        # with bind_and_activate=True the option would land too late to
        # matter for the rebind race.
        self._httpd = ThreadingHTTPServer(
            (host, port), _Handler, bind_and_activate=False
        )
        self._httpd.allow_reuse_address = True
        self._httpd.daemon_threads = True
        self._httpd.exposition = self  # type: ignore[attr-defined]
        try:
            self._httpd.server_bind()
            self._httpd.server_activate()
        except OSError:
            self._httpd.server_close()
            raise
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The actually-bound port (resolved even when asked for 0)."""
        return self._httpd.server_address[1]

    # -- routing ---------------------------------------------------------------------

    def dispatch(
        self,
        method: str,
        path: str,
        params: Dict[str, List[str]],
        body: Optional[str] = None,
    ) -> Optional[Response]:
        """Map one request to a :class:`Response`; None means 404.

        Subclasses add routes by overriding this and delegating unknown
        paths to ``super().dispatch`` -- that is how the search service
        serves ``/search`` and ``/metrics`` from one listener.  ``body``
        carries the decoded request body of a POST (None when absent);
        the observability routes themselves never read it.
        """
        if method != "GET":
            return None
        if path == "/metrics":
            return Response(
                status=200,
                content_type="text/plain; version=0.0.4; charset=utf-8",
                body=self.render_metrics(),
            )
        if path == "/health":
            return Response(
                status=200,
                content_type="application/json",
                body=self.render_health(),
            )
        if path == "/slo":
            return Response(
                status=200,
                content_type="application/json",
                body=self.render_slo(),
            )
        if path == "/slowlog":
            return Response(
                status=200,
                content_type="application/json",
                body=self.render_slowlog(),
            )
        return None

    # -- rendering (also used directly by tests) -------------------------------------

    def _collect(self) -> None:
        for collector in self.collectors:
            try:
                collector()
            except Exception as error:
                _log.warning(
                    "collector.failed", collector=repr(collector), error=str(error)
                )

    def render_metrics(self) -> str:
        self._collect()
        return render_prometheus(get_registry().snapshot())

    def render_health(self) -> str:
        self._collect()
        info: Dict[str, Any] = {
            "status": "ok",
            "uptime_s": round(time.monotonic() - self.started_at, 3),
        }
        if self.health_info is not None:
            try:
                info.update(self.health_info())
            except Exception as error:
                info["status"] = "degraded"
                info["error"] = f"{type(error).__name__}: {error}"
        return json.dumps(info, sort_keys=True) + "\n"

    def render_slo(self) -> str:
        statuses = [
            status.to_dict() for status in get_telemetry().slo_statuses()
        ]
        return json.dumps({"slo": statuses}, sort_keys=True) + "\n"

    def render_slowlog(self) -> str:
        return (
            json.dumps(
                {"slowlog": get_telemetry().slowlog.to_dicts()},
                sort_keys=True,
            )
            + "\n"
        )

    # -- lifecycle -------------------------------------------------------------------

    def start(self) -> "ExpositionServer":
        """Serve in a daemon thread; returns self for chaining."""
        if self._thread is not None:
            raise RuntimeError("exposition server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-obs-http",
            daemon=True,
        )
        self._thread.start()
        _log.info("serving", host=self.host, port=self.port)
        return self

    def stop(self) -> None:
        """Stop serving and release the port (safe before ``start`` too).

        ``shutdown()`` blocks until ``serve_forever`` acknowledges, so it
        must only run when the serve thread exists -- the socket is bound
        at construction, and a constructed-but-never-started server still
        needs ``stop()`` to release it.
        """
        if self._thread is not None:
            self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ExpositionServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False
