"""Synthetic data generation: the stand-in for the paper's PubMed testbed.

The original evaluation ran on 72,027 parsed full-text PubMed genomics
papers annotated against the Gene Ontology.  That data cannot ship with a
reproduction, so this package generates a corpus with the *statistical
properties the experiments depend on*:

- a GO-like ontology whose term names are compositional (children extend
  parent names with modifiers -- "metabolic process" ->
  "glucose metabolic process"), so pattern significant-terms behave as in
  section 5.2's worked example;
- per-term topic vocabularies where deep terms own rare, selective jargon
  and shallow terms share broad vocabulary;
- papers generated from their true contexts' topic mixtures, with
  training (annotation-evidence) papers per term;
- citations wired with topical locality + preferential attachment, so
  intra-context citation subgraphs get sparser with depth -- the effect
  driving the paper's citation-score findings;
- a TIGR-style query workload: topical multi-word queries that are *not*
  verbatim term names.

Everything is deterministically seeded.

- :mod:`repro.datagen.lexicon` -- pseudo-biomedical word supply.
- :mod:`repro.datagen.ontology_gen` -- synthetic GO-like DAGs.
- :mod:`repro.datagen.topics` -- per-term topic vocabulary model.
- :mod:`repro.datagen.corpus_gen` -- the corpus generator.
- :mod:`repro.datagen.queries` -- the query-workload generator.
"""

from repro.datagen.corpus_gen import CorpusGenerator, GeneratedDataset
from repro.datagen.lexicon import Lexicon
from repro.datagen.ontology_gen import OntologyGenerator
from repro.datagen.presets import PRESETS, ScalePreset, get_preset
from repro.datagen.queries import QueryWorkload, generate_queries
from repro.datagen.topics import TopicModel

__all__ = [
    "Lexicon",
    "OntologyGenerator",
    "TopicModel",
    "CorpusGenerator",
    "GeneratedDataset",
    "QueryWorkload",
    "generate_queries",
    "PRESETS",
    "ScalePreset",
    "get_preset",
]
