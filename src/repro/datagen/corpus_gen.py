"""The synthetic corpus generator.

Produces a :class:`GeneratedDataset`: a corpus of papers with full text,
authors, references and ground-truth context labels, plus the per-term
training (annotation-evidence) paper sets that pattern construction needs.

Design goals, mapped to the paper's experimental premises:

- **Topical coherence** -- every paper is sampled from the topic mixture of
  its true contexts, so text similarity within a context is high and
  representative papers are meaningful.
- **Citation locality with multi-scale structure** -- references prefer
  papers whose primary term lies in the citing paper's term neighbourhood
  (same term, its ancestors, its children), with preferential attachment.
  Deep contexts therefore have few intra-context edges (their papers'
  citations mostly leave the context), while shallow contexts aggregate
  whole subtrees and stay denser -- the sparsity gradient behind the
  citation-score results.
- **Author locality** -- authors are anchored to ontology terms and write
  papers near their anchor, making level-0/1 author overlap informative.
- **Training papers** -- each term's most on-topic papers double as its GO
  annotation-evidence set (the input to pattern mining).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.corpus.corpus import Corpus
from repro.corpus.paper import Paper
from repro.datagen.lexicon import Lexicon
from repro.datagen.ontology_gen import OntologyGenerator
from repro.datagen.topics import TopicModel
from repro.ontology.ontology import Ontology


@dataclass
class GeneratedDataset:
    """Everything the pipeline downstream of data generation consumes."""

    corpus: Corpus
    ontology: Ontology
    topics: TopicModel
    #: term id -> ids of its annotation-evidence (training) papers.
    training_papers: Dict[str, List[str]]
    #: paper id -> the single primary term it was generated from.
    primary_term_of: Dict[str, str]
    #: Review/survey papers: diffuse text, citation magnets (diagnostics).
    review_paper_ids: frozenset = frozenset()
    seed: int = 0


@dataclass
class CorpusGenerator:
    """Parameters for corpus synthesis.

    Attributes
    ----------
    n_papers:
        Corpus size.
    ontology:
        Pre-built ontology; if None one is generated from
        ``ontology_generator`` with the same seed.
    extra_context_probability:
        Chance a paper gets a second true context (a sibling or parent of
        its primary term), mirroring multi-annotation in GO.
    references_mean:
        Mean reference-list length (Poisson-ish via triangular draw).
    topical_citation_probability:
        Chance one reference is drawn from the term-neighbourhood pool
        rather than the whole corpus.
    training_per_term:
        Cap on annotation-evidence papers recorded per term.
    title_words / abstract_chunks / body_chunks:
        Text length knobs (chunks are 1..n-word topic draws).
    """

    n_papers: int = 2000
    ontology: Optional[Ontology] = None
    ontology_generator: OntologyGenerator = field(default_factory=OntologyGenerator)
    authors_pool_divisor: int = 3
    authors_per_paper: Tuple[int, int] = (2, 5)
    extra_context_probability: float = 0.30
    references_mean: int = 12
    topical_citation_probability: float = 0.8
    training_per_term: int = 6
    title_words: Tuple[int, int] = (6, 12)
    abstract_chunks: Tuple[int, int] = (35, 60)
    body_chunks: Tuple[int, int] = (140, 260)
    #: Per-paper filler share is drawn uniformly from this range: papers
    #: differ in topical *intensity* (a dense methods paper vs. a chatty
    #: one), which spreads within-context text similarities -- without it
    #: every member of a tight context scores the same against the
    #: representative and text separability collapses at depth.
    filler_range: Tuple[float, float] = (0.15, 0.60)
    year_range: Tuple[int, int] = (1985, 2006)
    #: Fraction of papers generated as *reviews*: anchored at a broad
    #: (level <= review_max_level) term, their text mixes several
    #: descendant topics, and they attract citations from the whole
    #: subtree.  Reviews decouple citation fame from context typicality --
    #: the paper's premise that "citations may carry weak indications of
    #: topical similarity" and that contexts "cite or are cited by large
    #: numbers of papers outside the contexts".
    review_fraction: float = 0.06
    review_max_level: int = 3
    #: Multiplier on a review's attractiveness during citation sampling.
    review_citation_boost: float = 6.0
    #: How many descendant topics a review's text mixes over.
    review_topic_spread: Tuple[int, int] = (3, 6)

    def generate(self, seed: int = 0) -> GeneratedDataset:
        """Generate the full dataset deterministically from ``seed``."""
        if self.n_papers < 1:
            raise ValueError(f"n_papers must be >= 1, got {self.n_papers}")
        rng = random.Random(seed)
        lexicon = Lexicon(rng)
        ontology = (
            self.ontology
            if self.ontology is not None
            else self.ontology_generator.generate(seed=seed)
        )
        topics = TopicModel(ontology, lexicon, rng)
        term_ids = ontology.term_ids()

        authors_by_term = self._build_author_pool(rng, lexicon, term_ids)
        neighborhoods = {tid: self._neighborhood(ontology, tid) for tid in term_ids}
        broad_terms = [
            tid for tid in term_ids if ontology.level(tid) <= self.review_max_level
        ]

        papers: List[Paper] = []
        papers_by_primary: Dict[str, List[int]] = {tid: [] for tid in term_ids}
        in_degree: List[int] = []
        citation_pull: List[float] = []
        review_flags: List[bool] = []
        primary_term_of: Dict[str, str] = {}

        year_lo, year_hi = self.year_range
        for index in range(self.n_papers):
            is_review = bool(broad_terms) and rng.random() < self.review_fraction
            if is_review:
                primary = rng.choice(broad_terms)
                true_contexts = [primary]
                text_contexts = self._review_mixture(rng, ontology, primary)
            else:
                primary = rng.choice(term_ids)
                true_contexts = [primary]
                if rng.random() < self.extra_context_probability:
                    extra = self._related_term(rng, ontology, primary)
                    if extra is not None and extra not in true_contexts:
                        true_contexts.append(extra)
                text_contexts = true_contexts
            paper_id = f"P{index:06d}"
            year = year_lo + int((year_hi - year_lo) * index / max(self.n_papers - 1, 1))
            authors = self._sample_authors(rng, authors_by_term, ontology, primary)
            references = self._sample_references(
                rng, index, primary, neighborhoods[primary], papers_by_primary,
                in_degree, citation_pull,
            )
            filler = rng.uniform(*self.filler_range)
            paper = Paper(
                paper_id=paper_id,
                title=self._make_title(rng, topics, lexicon, text_contexts),
                abstract=self._make_prose(
                    rng, topics, lexicon, text_contexts, self.abstract_chunks, filler
                ),
                body=self._make_prose(
                    rng, topics, lexicon, text_contexts, self.body_chunks, filler
                ),
                index_terms=self._make_index_terms(rng, ontology, topics, text_contexts),
                authors=tuple(authors),
                references=tuple(f"P{r:06d}" for r in references),
                year=year,
                true_context_ids=tuple(true_contexts),
            )
            papers.append(paper)
            papers_by_primary[primary].append(index)
            in_degree.append(0)
            citation_pull.append(self.review_citation_boost if is_review else 1.0)
            review_flags.append(is_review)
            for r in references:
                in_degree[r] += 1
            primary_term_of[paper_id] = primary

        # Annotation evidence is *specific*: reviews never serve as
        # training papers (a survey does not evidence one narrow term).
        training = {
            tid: [
                f"P{i:06d}"
                for i in indices
                if not review_flags[i]
            ][: self.training_per_term]
            for tid, indices in papers_by_primary.items()
        }
        return GeneratedDataset(
            corpus=Corpus(papers),
            ontology=ontology,
            topics=topics,
            training_papers=training,
            primary_term_of=primary_term_of,
            review_paper_ids=frozenset(
                f"P{i:06d}" for i, flag in enumerate(review_flags) if flag
            ),
            seed=seed,
        )

    def _review_mixture(
        self, rng: random.Random, ontology: Ontology, broad_term: str
    ) -> List[str]:
        """The topics a review's text mixes over: the broad term + spread."""
        descendants = sorted(ontology.descendants(broad_term))
        lo, hi = self.review_topic_spread
        k = min(rng.randint(lo, hi), len(descendants))
        mixture = [broad_term]
        if k:
            mixture.extend(rng.sample(descendants, k))
        return mixture

    # -- structure helpers --------------------------------------------------------

    def _build_author_pool(
        self, rng: random.Random, lexicon: Lexicon, term_ids: Sequence[str]
    ) -> Dict[str, List[str]]:
        """Anchor each minted author to one term; returns term -> authors."""
        n_authors = max(self.n_papers // self.authors_pool_divisor, 4)
        by_term: Dict[str, List[str]] = {tid: [] for tid in term_ids}
        for _ in range(n_authors):
            anchor = rng.choice(list(term_ids))
            by_term[anchor].append(lexicon.author_name())
        return by_term

    @staticmethod
    def _neighborhood(ontology: Ontology, term_id: str) -> List[str]:
        """Terms whose papers are 'topically near' ``term_id`` for citations."""
        near = {term_id}
        near.update(ontology.ancestors(term_id))
        near.update(ontology.children(term_id))
        return sorted(near)

    @staticmethod
    def _related_term(
        rng: random.Random, ontology: Ontology, term_id: str
    ) -> Optional[str]:
        """A parent or sibling of ``term_id`` (None for an isolated root)."""
        options: List[str] = list(ontology.parents(term_id))
        for parent in ontology.parents(term_id):
            options.extend(
                child for child in ontology.children(parent) if child != term_id
            )
        if not options:
            return None
        return rng.choice(options)

    def _sample_authors(
        self,
        rng: random.Random,
        authors_by_term: Dict[str, List[str]],
        ontology: Ontology,
        primary: str,
    ) -> List[str]:
        lo, hi = self.authors_per_paper
        count = rng.randint(lo, hi)
        pool: List[str] = list(authors_by_term.get(primary, ()))
        for parent in ontology.parents(primary):
            pool.extend(authors_by_term.get(parent, ()))
        for child in ontology.children(primary):
            pool.extend(authors_by_term.get(child, ()))
        if not pool:
            # Isolated corner of the ontology: draw from anywhere.
            pool = [a for authors in authors_by_term.values() for a in authors]
        chosen: List[str] = []
        for _ in range(count):
            chosen.append(rng.choice(pool))
        return list(dict.fromkeys(chosen))  # dedupe, keep order

    def _sample_references(
        self,
        rng: random.Random,
        index: int,
        primary: str,
        neighborhood: Sequence[str],
        papers_by_primary: Dict[str, List[int]],
        in_degree: List[int],
        citation_pull: List[float],
    ) -> List[int]:
        """Reference indices among papers generated before ``index``."""
        if index == 0:
            return []
        target_count = max(
            1, int(rng.triangular(1, self.references_mean * 2, self.references_mean))
        )
        topical_pool: List[int] = []
        for tid in neighborhood:
            topical_pool.extend(papers_by_primary[tid])
        chosen: set = set()
        for _ in range(target_count):
            if topical_pool and rng.random() < self.topical_citation_probability:
                candidate = self._preferential_choice(
                    rng, topical_pool, in_degree, citation_pull
                )
            else:
                candidate = rng.randrange(index)
            if candidate is not None and candidate != index:
                chosen.add(candidate)
        return sorted(chosen)

    @staticmethod
    def _preferential_choice(
        rng: random.Random,
        pool: Sequence[int],
        in_degree: List[int],
        citation_pull: List[float],
    ) -> Optional[int]:
        """Weighted draw by (in-degree + 1) * pull: rich papers get richer,
        reviews pull harder regardless of topical fit."""
        if not pool:
            return None
        # Sample a small candidate set then pick the most attractive:
        # cheaper than building full cumulative weights per draw, same
        # bias shape.
        sample_size = min(4, len(pool))
        candidates = [pool[rng.randrange(len(pool))] for _ in range(sample_size)]
        return max(
            candidates,
            key=lambda i: ((in_degree[i] + 1) * citation_pull[i], -i),
        )

    # -- text helpers ---------------------------------------------------------------

    def _make_title(
        self,
        rng: random.Random,
        topics: TopicModel,
        lexicon: Lexicon,
        true_contexts: Sequence[str],
    ) -> str:
        lo, hi = self.title_words
        words: List[str] = []
        primary_topic = topics.topic(true_contexts[0])
        while len(words) < rng.randint(lo, hi):
            words.extend(primary_topic.sample_chunk(rng))
        return " ".join(words)

    def _make_prose(
        self,
        rng: random.Random,
        topics: TopicModel,
        lexicon: Lexicon,
        true_contexts: Sequence[str],
        chunk_range: Tuple[int, int],
        filler_probability: float,
    ) -> str:
        lo, hi = chunk_range
        n_chunks = rng.randint(lo, hi)
        words: List[str] = []
        sentence_len = rng.randint(8, 16)
        sentence_progress = 0
        for _ in range(n_chunks):
            if rng.random() < filler_probability:
                chunk: Tuple[str, ...] = (lexicon.filler_word(),)
            else:
                context = true_contexts[0]
                if len(true_contexts) > 1 and rng.random() < 0.5:
                    context = rng.choice(true_contexts[1:])
                chunk = topics.topic(context).sample_chunk(rng)
            words.extend(chunk)
            sentence_progress += len(chunk)
            if sentence_progress >= sentence_len:
                words[-1] = words[-1] + "."
                sentence_progress = 0
                sentence_len = rng.randint(8, 16)
        return " ".join(words)

    def _make_index_terms(
        self,
        rng: random.Random,
        ontology: Ontology,
        topics: TopicModel,
        true_contexts: Sequence[str],
    ) -> Tuple[str, ...]:
        entries: List[str] = []
        for context in true_contexts:
            entries.append(ontology.term(context).name)
            jargon = topics.jargon_of(context)
            if jargon:
                entries.append(rng.choice(jargon))
        extra = topics.topic(true_contexts[0]).sample_chunk(rng)
        entries.append(" ".join(extra))
        return tuple(dict.fromkeys(entries))
