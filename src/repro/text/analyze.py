"""The composed text-analysis pipeline used throughout the system.

Every component that turns raw text into index/vector terms (the inverted
index, TF-IDF vectors, pattern mining, AC-answer construction) goes through
one :class:`Analyzer` so stemming and stopword decisions stay consistent
across the whole pipeline.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional

from repro.text.stem import PorterStemmer
from repro.text.stopwords import STOPWORDS
from repro.text.tokenize import tokenize


class Analyzer:
    """Tokenise, lowercase, drop stopwords, and (optionally) stem.

    Parameters
    ----------
    stopwords:
        Set of lowercase words to drop.  Pass ``frozenset()`` to keep all.
    stem:
        If True (default), apply the Porter stemmer to surviving tokens.
    min_token_length:
        Tokens shorter than this are dropped *after* stemming.  Single
        characters are almost always noise in scientific text; gene symbols
        of length >= 2 survive.
    """

    def __init__(
        self,
        stopwords: Optional[FrozenSet[str]] = None,
        stem: bool = True,
        min_token_length: int = 2,
    ) -> None:
        self.stopwords = STOPWORDS if stopwords is None else stopwords
        self.stem_enabled = stem
        self.min_token_length = min_token_length
        self._stemmer = PorterStemmer()
        # Memoise stems: corpus analysis hits the same words millions of
        # times and the stemmer is the hot path.
        self._stem_cache: dict = {}

    def analyze(self, text: str) -> List[str]:
        """Return the analysis terms of ``text`` in document order.

        >>> Analyzer().analyze("The binding of transcription factors")
        ['bind', 'transcript', 'factor']
        """
        terms = []
        for token in tokenize(text):
            if token in self.stopwords:
                continue
            if self.stem_enabled:
                term = self._stem_cached(token)
            else:
                term = token
            if len(term) >= self.min_token_length:
                terms.append(term)
        return terms

    def analyze_tokens(self, tokens: List[str]) -> List[str]:
        """Analyse pre-tokenised, lowercased ``tokens`` (no re-tokenising)."""
        terms = []
        for token in tokens:
            if token in self.stopwords:
                continue
            term = self._stem_cached(token) if self.stem_enabled else token
            if len(term) >= self.min_token_length:
                terms.append(term)
        return terms

    def _stem_cached(self, token: str) -> str:
        cached = self._stem_cache.get(token)
        if cached is None:
            cached = self._stemmer.stem(token)
            self._stem_cache[token] = cached
        return cached

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Analyzer(stem={self.stem_enabled}, "
            f"min_token_length={self.min_token_length}, "
            f"n_stopwords={len(self.stopwords)})"
        )


_DEFAULT: Optional[Analyzer] = None


def default_analyzer() -> Analyzer:
    """Return the process-wide shared :class:`Analyzer`.

    Sharing one instance shares the stem cache, which matters when several
    components (index, vectoriser, pattern miner) analyse the same corpus.
    """
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = Analyzer()
    return _DEFAULT
