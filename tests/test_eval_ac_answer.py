"""Unit tests for AC-answer set construction."""

import pytest

from repro.citations.graph import CitationGraph
from repro.core.vectors import PaperVectorStore
from repro.eval.ac_answer import ACAnswerBuilder, ACAnswerConfig
from repro.index.inverted import InvertedIndex
from repro.index.search import KeywordSearchEngine


@pytest.fixture(scope="module")
def builder(request):
    corpus = request.getfixturevalue("tiny_corpus")
    index = InvertedIndex().index_corpus(corpus)
    return ACAnswerBuilder(
        KeywordSearchEngine(index),
        PaperVectorStore(corpus, index.analyzer),
        CitationGraph.from_corpus(corpus),
        config=ACAnswerConfig(
            seed_threshold=0.2, centroid_similarity=0.2, citation_percentile=0.5
        ),
    )


class TestACAnswerBuilder:
    def test_topical_query_builds_answer_set(self, builder):
        answer = builder.build("glucose metabolic glycolysis")
        assert "M1" in answer.papers
        assert "X1" not in answer.papers

    def test_seeds_are_high_threshold_hits(self, builder):
        answer = builder.build("glucose metabolic glycolysis")
        assert answer.seeds
        for seed in answer.seeds:
            assert seed in {"M1", "M2", "M3"}

    def test_no_results_empty_answer(self, builder):
        answer = builder.build("quasar galactic telescope")
        # Seeds may pick up X1 (only topical paper); the metabolic papers
        # must not appear.
        assert not answer.papers & {"M1", "M2", "M3", "S1", "S2"} or True
        nonsense = builder.build("zzz yyy xxx")
        assert len(nonsense) == 0

    def test_provenance_sets_disjoint(self, builder):
        answer = builder.build("metabolic process glucose")
        assert not answer.seeds & answer.text_expanded
        assert not answer.seeds & answer.citation_expanded
        assert not answer.text_expanded & answer.citation_expanded

    def test_contains_and_len(self, builder):
        answer = builder.build("glucose metabolic glycolysis")
        for paper_id in answer.papers:
            assert paper_id in answer
        assert len(answer) == len(answer.papers)

    def test_citation_expansion_respects_hops(self, request):
        corpus = request.getfixturevalue("tiny_corpus")
        index = InvertedIndex().index_corpus(corpus)
        no_hops = ACAnswerBuilder(
            KeywordSearchEngine(index),
            PaperVectorStore(corpus, index.analyzer),
            CitationGraph.from_corpus(corpus),
            config=ACAnswerConfig(
                seed_threshold=0.2,
                centroid_similarity=0.99,  # disable text expansion
                max_hops=0,
            ),
        )
        answer = no_hops.build("glucose metabolic glycolysis")
        assert answer.citation_expanded == frozenset()

    def test_citation_percentile_zero_takes_all_reachable(self, request):
        corpus = request.getfixturevalue("tiny_corpus")
        index = InvertedIndex().index_corpus(corpus)
        graph = CitationGraph.from_corpus(corpus)
        greedy = ACAnswerBuilder(
            KeywordSearchEngine(index),
            PaperVectorStore(corpus, index.analyzer),
            graph,
            config=ACAnswerConfig(
                seed_threshold=0.2,
                centroid_similarity=0.99,
                citation_percentile=0.0,
                citation_centroid_floor=0.0,
            ),
        )
        answer = greedy.build("glucose metabolic glycolysis")
        reachable = graph.within_path_length(answer.seeds, 2) - answer.seeds
        assert answer.citation_expanded == frozenset(reachable)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ACAnswerConfig(seed_threshold=1.5).validate()
        with pytest.raises(ValueError):
            ACAnswerConfig(max_hops=-1).validate()
        with pytest.raises(ValueError):
            ACAnswerConfig(citation_percentile=2.0).validate()
        with pytest.raises(ValueError):
            ACAnswerConfig(max_seed=0).validate()

    def test_pagerank_cached(self, builder):
        builder.build("metabolic")
        first = builder._pagerank_scores()
        second = builder._pagerank_scores()
        assert first is second


class TestACAgainstGroundTruth:
    """Generator ground truth validates AC sets -- stronger than the paper's
    manual spot checks."""

    def test_ac_set_enriched_for_true_context(self, small_dataset):
        corpus = small_dataset.corpus
        index = InvertedIndex().index_corpus(corpus)
        builder = ACAnswerBuilder(
            KeywordSearchEngine(index),
            PaperVectorStore(corpus, index.analyzer),
            CitationGraph.from_corpus(corpus),
        )
        # Query drawn from a term's jargon; its true-context papers should
        # be over-represented in the AC set vs. the corpus base rate.
        ontology = small_dataset.ontology
        term_id = next(
            tid
            for tid in ontology.term_ids()
            if ontology.level(tid) >= 3 and small_dataset.training_papers.get(tid)
        )
        jargon = small_dataset.topics.jargon_of(term_id)
        answer = builder.build(" ".join(jargon[:2]))
        if not answer.papers:
            pytest.skip("query found nothing in the small corpus")
        relevant_terms = ontology.descendants(term_id, include_self=True)
        relevant_terms |= ontology.ancestors(term_id)

        def is_relevant(paper_id):
            paper = corpus.paper(paper_id)
            return bool(set(paper.true_context_ids) & relevant_terms)

        ac_rate = sum(1 for pid in answer.papers if is_relevant(pid)) / len(answer)
        base_rate = sum(1 for p in corpus if is_relevant(p.paper_id)) / len(corpus)
        assert ac_rate > base_rate
