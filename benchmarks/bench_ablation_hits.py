"""Ablation A2 -- HITS authorities vs PageRank.

The paper picked PageRank citing earlier experiments [11] that found HITS
and PageRank scores "highly correlated" on the ACM SIGMOD Anthology.
This bench reproduces that claim on the synthetic corpus: Spearman rank
correlation and top-10% overlap between HITS authority scores and
PageRank scores, corpus-wide and per context, plus agreement of the two
functions' full prestige maps via the library's :class:`HitsPrestige`.
"""

from conftest import write_result

from repro.citations.hits import hits_scores
from repro.citations.pagerank import pagerank
from repro.eval.metrics import topk_overlap
from repro.eval.stats import spearman


def test_ablation_hits_vs_pagerank(benchmark, pipeline, results_dir):
    graph = pipeline.citation_graph

    def run():
        global_pr = pagerank(graph).scores
        global_hits = hits_scores(graph).authorities
        global_rho = spearman(global_pr, global_hits)
        global_overlap = topk_overlap(global_pr, global_hits, k_percent=0.1)
        # Per-context agreement of the two prestige functions end-to-end.
        pagerank_prestige = pipeline.prestige("citation", "pattern")
        hits_prestige = pipeline.prestige("hits", "pattern")
        per_context = []
        for context_id in pagerank_prestige.context_ids():
            if context_id not in hits_prestige:
                continue
            rho = spearman(
                pagerank_prestige.of(context_id), hits_prestige.of(context_id)
            )
            if rho is not None:
                per_context.append(rho)
            if len(per_context) >= 40:
                break
        return global_rho, global_overlap, per_context

    global_rho, global_overlap, per_context = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    mean_context_rho = (
        sum(per_context) / len(per_context) if per_context else float("nan")
    )
    lines = [
        f"corpus-wide Spearman rho:       {global_rho:.3f}",
        f"corpus-wide top-10% overlap:    {global_overlap:.3f}",
        f"per-context mean Spearman rho:  {mean_context_rho:.3f} "
        f"({len(per_context)} contexts)",
    ]
    write_result(results_dir, "ablation_hits", "\n".join(lines))

    assert global_rho > 0.5, "HITS and PageRank must correlate corpus-wide"
    if per_context:
        assert mean_context_rho > 0.3
