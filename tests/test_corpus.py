"""Unit tests for Paper and Corpus."""

import pytest

from repro.corpus.corpus import Corpus, CorpusError
from repro.corpus.paper import Paper, Section


def make_papers():
    return [
        Paper(
            paper_id="P1",
            title="Gene expression in yeast",
            abstract="We study expression.",
            body="Long body text about genes.",
            index_terms=("expression", "yeast"),
            authors=("Alice", "Bob"),
            references=("P2", "P_EXTERNAL"),
            year=2001,
        ),
        Paper(
            paper_id="P2",
            title="Protein folding dynamics",
            authors=("Bob", "Carol"),
            references=(),
            year=1999,
        ),
        Paper(
            paper_id="P3",
            title="Survey of binding",
            authors=("Dave",),
            references=("P1", "P2"),
            year=2003,
        ),
    ]


class TestPaper:
    def test_section_text(self):
        paper = make_papers()[0]
        assert paper.section_text(Section.TITLE) == "Gene expression in yeast"
        assert paper.section_text(Section.INDEX_TERMS) == "expression yeast"

    def test_section_text_rejects_set_facets(self):
        with pytest.raises(ValueError):
            make_papers()[0].section_text(Section.AUTHORS)

    def test_all_text_concatenates(self):
        text = make_papers()[0].all_text()
        assert "Gene expression in yeast" in text
        assert "Long body text" in text
        assert "yeast" in text

    def test_dict_round_trip(self):
        paper = make_papers()[0]
        assert Paper.from_dict(paper.to_dict()) == paper

    def test_from_dict_defaults(self):
        paper = Paper.from_dict({"paper_id": "X", "title": "t"})
        assert paper.abstract == ""
        assert paper.authors == ()
        assert paper.year == 2000


class TestCorpus:
    @pytest.fixture
    def corpus(self):
        return Corpus(make_papers())

    def test_len_iter_contains(self, corpus):
        assert len(corpus) == 3
        assert "P1" in corpus and "PX" not in corpus
        assert [p.paper_id for p in corpus] == ["P1", "P2", "P3"]

    def test_duplicate_rejected(self, corpus):
        with pytest.raises(CorpusError, match="duplicate"):
            corpus.add(make_papers()[0])

    def test_unknown_lookup(self, corpus):
        with pytest.raises(CorpusError, match="unknown"):
            corpus.paper("missing")

    def test_references_drop_dangling(self, corpus):
        # P_EXTERNAL is not in the corpus; only P2 survives.
        assert corpus.references_of("P1") == ("P2",)

    def test_citations_of(self, corpus):
        assert set(corpus.citations_of("P2")) == {"P1", "P3"}
        assert corpus.citations_of("P3") == ()

    def test_dangling_references_reported(self, corpus):
        assert corpus.dangling_references() == {"P1": ("P_EXTERNAL",)}

    def test_papers_by_author(self, corpus):
        assert corpus.papers_by_author("Bob") == ("P1", "P2")
        assert corpus.papers_by_author("Nobody") == ()

    def test_authors_sorted(self, corpus):
        assert corpus.authors() == ["Alice", "Bob", "Carol", "Dave"]

    def test_coauthors_of(self, corpus):
        # P1 authors {Alice, Bob}; Bob co-wrote P2 with Carol.
        assert corpus.coauthors_of("P1") == {"Carol"}
        # Dave wrote alone.
        assert corpus.coauthors_of("P3") == set()

    def test_subset(self, corpus):
        sub = corpus.subset(["P1", "P2"])
        assert len(sub) == 2
        # P1 -> P2 edge survives within the subset.
        assert sub.references_of("P1") == ("P2",)

    def test_index_invalidation_on_add(self, corpus):
        assert corpus.citations_of("P2") == ("P1", "P3")
        corpus.add(Paper(paper_id="P4", title="New", references=("P2",)))
        assert "P4" in corpus.citations_of("P2")

    def test_self_reference_excluded(self):
        corpus = Corpus([Paper(paper_id="S", title="self", references=("S",))])
        assert corpus.references_of("S") == ()
