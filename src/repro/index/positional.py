"""Positional inverted index: exact phrase queries.

Extends :class:`~repro.index.inverted.InvertedIndex` with per-section
term position lists, enabling

- exact phrase containment (``papers_containing_phrase``), used by
  pattern matching when exact PaperCoverage is wanted instead of the
  conjunctive approximation;
- quoted-phrase keyword queries in the search engine.

Memory cost is one integer per token occurrence -- acceptable for the
corpus sizes this system targets and strictly opt-in (the plain index
remains the default).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Sequence, Tuple

from repro.corpus.paper import Paper, Section, TEXT_SECTIONS
from repro.index.inverted import InvertedIndex


class PositionalIndex(InvertedIndex):
    """Inverted index that additionally records token positions."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: (paper_id, section) -> term -> sorted positions
        self._positions: Dict[Tuple[str, Section], Dict[str, List[int]]] = {}

    def index_paper(self, paper: Paper) -> None:
        super().index_paper(paper)
        for section in TEXT_SECTIONS:
            terms = self.analyzer.analyze(paper.section_text(section))
            if not terms:
                continue
            positions: Dict[str, List[int]] = {}
            for offset, term in enumerate(terms):
                positions.setdefault(term, []).append(offset)
            self._positions[(paper.paper_id, section)] = positions

    def remove_paper(self, paper_id: str) -> None:
        super().remove_paper(paper_id)
        for section in TEXT_SECTIONS:
            self._positions.pop((paper_id, section), None)

    # -- positional access ---------------------------------------------------------

    def positions(self, paper_id: str, term: str, section: Section) -> List[int]:
        """Sorted offsets of ``term`` in one section (empty if absent)."""
        return list(self._positions.get((paper_id, section), {}).get(term, ()))

    def phrase_positions(
        self, paper_id: str, phrase: Sequence[str], section: Section
    ) -> List[int]:
        """Start offsets where ``phrase`` occurs contiguously in a section.

        Standard positional-intersection: start from the first term's
        positions and keep those where every later term appears at the
        right offset.
        """
        if not phrase:
            return []
        section_positions = self._positions.get((paper_id, section))
        if section_positions is None:
            return []
        starts = section_positions.get(phrase[0])
        if not starts:
            return []
        result = list(starts)
        for distance, term in enumerate(phrase[1:], start=1):
            term_positions = section_positions.get(term)
            if not term_positions:
                return []
            result = [
                start
                for start in result
                if _contains(term_positions, start + distance)
            ]
            if not result:
                return []
        return result

    def phrase_frequency(self, paper_id: str, phrase: Sequence[str]) -> int:
        """Total occurrences of ``phrase`` across all sections of a paper."""
        return sum(
            len(self.phrase_positions(paper_id, phrase, section))
            for section in TEXT_SECTIONS
        )

    def papers_containing_phrase(self, phrase: Sequence[str]) -> List[str]:
        """Paper ids containing ``phrase`` contiguously in any section.

        Candidates come from the cheapest conjunctive intersection, then
        each is verified positionally -- exact at index-lookup cost.
        """
        phrase = list(phrase)
        if not phrase:
            return []
        candidate_sets = [set(self.papers_containing(term)) for term in phrase]
        candidates = set.intersection(*candidate_sets) if candidate_sets else set()
        return sorted(
            pid for pid in candidates if self.phrase_frequency(pid, phrase) > 0
        )


def _contains(sorted_list: List[int], value: int) -> bool:
    index = bisect_left(sorted_list, value)
    return index < len(sorted_list) and sorted_list[index] == value
