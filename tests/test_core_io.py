"""Unit tests for artefact persistence (context sets, prestige scores)."""

import pytest

from repro.core.context import Context, ContextPaperSet
from repro.core.io import (
    read_context_paper_set,
    read_prestige_scores,
    write_context_paper_set,
    write_prestige_scores,
)
from repro.core.scores.base import PrestigeScores


@pytest.fixture
def paper_set(tiny_ontology):
    return ContextPaperSet(
        tiny_ontology,
        [
            Context(
                "met",
                ("M1", "M2", "M3"),
                training_paper_ids=("M1",),
            ),
            Context(
                "glu",
                ("M1", "M2"),
                inherited_from="met",
                decay=0.37,
            ),
        ],
    )


class TestContextPaperSetRoundTrip:
    def test_round_trip(self, paper_set, tiny_ontology, tmp_path):
        path = tmp_path / "set.json"
        write_context_paper_set(paper_set, path)
        loaded = read_context_paper_set(path, tiny_ontology)
        assert len(loaded) == 2
        met = loaded.context("met")
        assert met.paper_ids == ("M1", "M2", "M3")
        assert met.training_paper_ids == ("M1",)
        glu = loaded.context("glu")
        assert glu.inherited_from == "met"
        assert glu.decay == pytest.approx(0.37)

    def test_wrong_format_rejected(self, tiny_ontology, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"format": "something-else"}', encoding="utf-8")
        with pytest.raises(ValueError, match="not a context paper set"):
            read_context_paper_set(path, tiny_ontology)

    def test_unknown_term_rejected_on_load(self, paper_set, tmp_path):
        from repro.ontology import Ontology
        from repro.ontology.term import Term

        path = tmp_path / "set.json"
        write_context_paper_set(paper_set, path)
        other_ontology = Ontology([Term("different", "thing")])
        with pytest.raises(ValueError):
            read_context_paper_set(path, other_ontology)


class TestPrestigeScoresRoundTrip:
    def test_round_trip(self, tmp_path):
        scores = PrestigeScores(
            "text", {"met": {"M1": 1.0, "M2": 0.25}, "glu": {"M1": 0.5}}
        )
        path = tmp_path / "scores.json"
        write_prestige_scores(scores, path)
        loaded = read_prestige_scores(path)
        assert loaded.function_name == "text"
        assert loaded.of("met") == {"M1": 1.0, "M2": 0.25}
        assert loaded.score("glu", "M1") == 0.5
        assert loaded.score("glu", "missing", default=-1.0) == -1.0

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"format": "nope"}', encoding="utf-8")
        with pytest.raises(ValueError, match="not a prestige-scores"):
            read_prestige_scores(path)

    def test_empty_scores(self, tmp_path):
        path = tmp_path / "empty.json"
        write_prestige_scores(PrestigeScores("citation", {}), path)
        loaded = read_prestige_scores(path)
        assert len(loaded) == 0
        assert loaded.function_name == "citation"
