"""Ranking-quality math: rank agreement between two result lists.

The source paper compares ranking functions *offline*; this module is
the arithmetic that turns the same comparison into an *online* signal.
Two rankings (top-k paper-id lists) are compared on:

- **Jaccard@k** -- set overlap of the top-k ids, position-blind
  (``|A ∩ B| / |A ∪ B|``); *churn* is its complement, ``1 - jaccard``;
- **Kendall tau on the top-k** -- pairwise order agreement over the ids
  *both* rankings retrieved: ``(concordant - discordant) / pairs``.
  Fewer than two common ids leaves order agreement undefined (``None``)
  -- set overlap already says everything there is to say.

Consumers:

- the **shadow-scoring harness**
  (:class:`repro.serving.analytics.ShadowScorer`) records live
  primary-vs-shadow agreement as ``search.shadow.*`` histograms;
- the **reload drift detector** (:meth:`repro.pipeline.Pipeline.refresh`)
  compares a pinned probe-query baseline against a candidate serving
  view and refuses the swap (:class:`DriftExceeded`) when result-set
  churn exceeds the configured ``--max-drift``.

Pure functions over sequences of ids -- no engines, no HTTP -- so every
edge case is unit-testable (``tests/test_obs_quality.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.obs.metrics import get_registry

__all__ = [
    "DriftExceeded",
    "DriftReport",
    "FunctionDrift",
    "RankAgreement",
    "compare_rankings",
    "evaluate_drift",
    "export_drift_gauges",
    "jaccard_at_k",
    "kendall_tau_at_k",
]


def jaccard_at_k(
    primary: Sequence[str], shadow: Sequence[str], k: Optional[int] = None
) -> float:
    """Set overlap of the two top-k id lists (``1.0`` when both empty).

    Position-blind by design: it answers "did the *result set* change",
    not "did the order change" -- that is :func:`kendall_tau_at_k`.
    Duplicate ids within one list collapse (set semantics).
    """
    top_a = set(primary[:k] if k is not None else primary)
    top_b = set(shadow[:k] if k is not None else shadow)
    union = top_a | top_b
    if not union:
        return 1.0
    return len(top_a & top_b) / len(union)


def kendall_tau_at_k(
    primary: Sequence[str], shadow: Sequence[str], k: Optional[int] = None
) -> Optional[float]:
    """Kendall tau over the ids both top-k lists contain; None if < 2.

    Restricting to the intersection keeps tau a pure *order* signal:
    ids only one ranking retrieved are already accounted for by
    :func:`jaccard_at_k`, and counting them as discordant would double-
    charge retrieval differences as ordering differences.  Identical
    order over the common ids gives ``1.0``, full reversal ``-1.0``.
    """
    top_a = list(primary[:k] if k is not None else primary)
    top_b = shadow[:k] if k is not None else shadow
    position_b = {paper_id: rank for rank, paper_id in enumerate(top_b)}
    common = [paper_id for paper_id in top_a if paper_id in position_b]
    n = len(common)
    if n < 2:
        return None
    concordant = 0
    discordant = 0
    for i in range(n):
        for j in range(i + 1, n):
            # common is ordered by the primary ranking, so pair (i, j)
            # is concordant iff the shadow ranking agrees i comes first.
            if position_b[common[i]] < position_b[common[j]]:
                concordant += 1
            else:
                discordant += 1
    return (concordant - discordant) / (n * (n - 1) / 2)


@dataclass(frozen=True)
class RankAgreement:
    """Agreement between one primary and one shadow ranking."""

    k: int
    jaccard: float
    kendall_tau: Optional[float]
    primary_count: int
    shadow_count: int

    @property
    def churn(self) -> float:
        """Result-set churn: the fraction of the union that changed."""
        return 1.0 - self.jaccard

    def to_dict(self) -> Dict[str, Any]:
        return {
            "k": self.k,
            "jaccard": round(self.jaccard, 6),
            "kendall_tau": (
                None if self.kendall_tau is None
                else round(self.kendall_tau, 6)
            ),
            "churn": round(self.churn, 6),
            "primary_count": self.primary_count,
            "shadow_count": self.shadow_count,
        }


def compare_rankings(
    primary: Sequence[str], shadow: Sequence[str], k: int = 10
) -> RankAgreement:
    """Jaccard@k + Kendall-tau@k between two ranked id lists."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    top_primary = list(primary[:k])
    top_shadow = list(shadow[:k])
    return RankAgreement(
        k=k,
        jaccard=jaccard_at_k(top_primary, top_shadow),
        kendall_tau=kendall_tau_at_k(top_primary, top_shadow),
        primary_count=len(top_primary),
        shadow_count=len(top_shadow),
    )


# -- reload drift --------------------------------------------------------------------


@dataclass(frozen=True)
class FunctionDrift:
    """Old-vs-new agreement for one score function over the probe set."""

    function: str
    queries: int
    mean_jaccard: float
    mean_kendall_tau: Optional[float]  # None when undefined for every probe
    max_churn: float
    worst_query: Optional[str]

    @property
    def churn(self) -> float:
        return 1.0 - self.mean_jaccard

    def to_dict(self) -> Dict[str, Any]:
        return {
            "function": self.function,
            "queries": self.queries,
            "mean_jaccard": round(self.mean_jaccard, 6),
            "mean_kendall_tau": (
                None if self.mean_kendall_tau is None
                else round(self.mean_kendall_tau, 6)
            ),
            "churn": round(self.churn, 6),
            "max_churn": round(self.max_churn, 6),
            "worst_query": self.worst_query,
        }


@dataclass(frozen=True)
class DriftReport:
    """Per-function drift between a probe baseline and a candidate view."""

    k: int
    functions: List[FunctionDrift]

    @property
    def max_churn(self) -> float:
        """Worst per-query churn across every probed function."""
        if not self.functions:
            return 0.0
        return max(drift.max_churn for drift in self.functions)

    def exceeds(self, max_drift: float) -> bool:
        return self.max_churn > max_drift

    def to_dict(self) -> Dict[str, Any]:
        return {
            "k": self.k,
            "max_churn": round(self.max_churn, 6),
            "functions": [drift.to_dict() for drift in self.functions],
        }


class DriftExceeded(Exception):
    """A drift-gated refresh refused the swap; the old view stays live."""

    def __init__(self, report: DriftReport, max_drift: float) -> None:
        super().__init__(
            f"reload drift {report.max_churn:.3f} exceeds "
            f"max_drift {max_drift:g}; serving view not swapped"
        )
        self.report = report
        self.max_drift = max_drift


def evaluate_drift(
    baseline: Mapping[str, Mapping[str, Sequence[str]]],
    candidate: Mapping[str, Mapping[str, Sequence[str]]],
    k: int = 10,
) -> DriftReport:
    """Compare two ``{function: {query: ranked ids}}`` probe rankings.

    Functions are taken from the *baseline* (the pinned probe set);
    probes missing from the candidate compare against the empty ranking,
    so a function that stopped returning anything shows up as full
    churn rather than silently dropping out of the report.
    """
    functions: List[FunctionDrift] = []
    for function in sorted(baseline):
        per_query = baseline[function]
        candidate_per_query = candidate.get(function, {})
        agreements = [
            (query, compare_rankings(
                per_query[query], candidate_per_query.get(query, ()), k=k,
            ))
            for query in sorted(per_query)
        ]
        if not agreements:
            continue
        taus = [
            agreement.kendall_tau
            for _, agreement in agreements
            if agreement.kendall_tau is not None
        ]
        worst_query, worst = max(
            agreements, key=lambda pair: pair[1].churn
        )
        functions.append(
            FunctionDrift(
                function=function,
                queries=len(agreements),
                mean_jaccard=(
                    sum(a.jaccard for _, a in agreements) / len(agreements)
                ),
                mean_kendall_tau=(
                    sum(taus) / len(taus) if taus else None
                ),
                max_churn=worst.churn,
                worst_query=worst_query if worst.churn > 0.0 else None,
            )
        )
    return DriftReport(k=k, functions=functions)


def export_drift_gauges(report: DriftReport) -> None:
    """Publish one drift report as ``serving.reload.drift.*`` gauges.

    Last-write-wins gauges: a scrape always sees the most recent
    drift-checked refresh.  ``kendall_tau`` is skipped when undefined
    (mirrors the None-gauge convention of the prom encoder).
    """
    registry = get_registry()
    registry.gauge("serving.reload.drift.max_churn").set(report.max_churn)
    registry.gauge("serving.reload.drift.functions").set(
        len(report.functions)
    )
    for drift in report.functions:
        registry.gauge(
            f"serving.reload.drift.{drift.function}.churn"
        ).set(drift.churn)
        registry.gauge(
            f"serving.reload.drift.{drift.function}.jaccard"
        ).set(drift.mean_jaccard)
        if drift.mean_kendall_tau is not None:
            registry.gauge(
                f"serving.reload.drift.{drift.function}.kendall_tau"
            ).set(drift.mean_kendall_tau)
