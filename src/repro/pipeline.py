"""End-to-end pipeline wiring: the one-stop user-facing API.

:class:`Pipeline` bundles the whole pre-processing chain of the paper --
index, vector store, the two context paper sets, the three prestige score
functions, and per-paper-set search engines -- behind lazily computed,
memoised properties.  Build one from your own data or call
:func:`build_demo_pipeline` for a seeded synthetic dataset.

Typical use::

    pipeline = build_demo_pipeline(seed=7, n_papers=800)
    hits = pipeline.search("dna repair kinase", limit=10)
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.citations.graph import CitationGraph
from repro.core.assignment import PatternContextAssigner, TextContextAssigner
from repro.core.context import ContextPaperSet
from repro.core.patterns import AnalyzedPaperCache
from repro.core.scores import (
    CitationPrestige,
    HitsPrestige,
    PatternPrestige,
    PrestigeScores,
    TextPrestige,
)
from repro.core.search import ContextSearchEngine, SearchHit, SELECTION_STRATEGIES
from repro.core.vectors import PaperVectorStore
from repro.corpus.corpus import Corpus
from repro.datagen.corpus_gen import CorpusGenerator, GeneratedDataset
from repro.datagen.ontology_gen import OntologyGenerator
from repro.index.inverted import InvertedIndex
from repro.index.search import KeywordSearchEngine
from repro.obs import get_registry, span
from repro.ontology.ontology import Ontology


class SearchResultCache:
    """Bounded, thread-safe LRU cache of merged search results.

    Serving-layer component: :class:`Pipeline` keys it on the full query
    identity (query string, prestige function, paper set, selection
    strategy, limit, threshold), so two requests that could rank
    differently never share an entry.  Hits/misses/evictions are counted
    as ``search.cache.{hit,miss,evict}``.  The cache holds derived data
    only and is invalidated explicitly whenever an artifact that feeds
    ranking is (re)installed -- see
    :meth:`Pipeline.invalidate_serving_caches`.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple, List[SearchHit]]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Tuple) -> Optional[List[SearchHit]]:
        registry = get_registry()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                registry.counter("search.cache.miss").inc()
                return None
            self._entries.move_to_end(key)
            registry.counter("search.cache.hit").inc()
            return list(entry)

    def put(self, key: Tuple, hits: Sequence[SearchHit]) -> None:
        registry = get_registry()
        with self._lock:
            self._entries[key] = list(hits)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                registry.counter("search.cache.evict").inc()

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class Pipeline:
    """Lazily-built artefact graph over one corpus + ontology + training map.

    Parameters
    ----------
    corpus / ontology / training_papers:
        The raw inputs (training papers are the per-term annotation
        evidence driving representatives and patterns).
    text_similarity_threshold:
        Membership bar for the text-based context paper set.
    min_context_size:
        Contexts smaller than this are dropped from the *experiment* view
        (the paper excludes small contexts); search still uses all.
    result_cache_size:
        Capacity of the serving-side LRU result cache (entries).
    """

    def __init__(
        self,
        corpus: Corpus,
        ontology: Ontology,
        training_papers: Mapping[str, Sequence[str]],
        text_similarity_threshold: float = 0.10,
        min_context_size: int = 5,
        w_prestige: float = 0.7,
        w_matching: float = 0.3,
        result_cache_size: int = 256,
    ) -> None:
        self.corpus = corpus
        self.ontology = ontology
        self.training_papers = {k: list(v) for k, v in training_papers.items()}
        self.text_similarity_threshold = text_similarity_threshold
        self.min_context_size = min_context_size
        self.w_prestige = w_prestige
        self.w_matching = w_matching
        self._index: Optional[InvertedIndex] = None
        self._vectors: Optional[PaperVectorStore] = None
        self._tokens: Optional[AnalyzedPaperCache] = None
        self._graph: Optional[CitationGraph] = None
        self._keyword_engine: Optional[KeywordSearchEngine] = None
        self._text_assigner: Optional[TextContextAssigner] = None
        self._pattern_assigner: Optional[PatternContextAssigner] = None
        self._text_paper_set: Optional[ContextPaperSet] = None
        self._pattern_paper_set: Optional[ContextPaperSet] = None
        self._representatives: Optional[Dict[str, str]] = None
        self._scores: Dict[str, PrestigeScores] = {}
        self._engines: Dict[Tuple[str, str, str], ContextSearchEngine] = {}
        self._engines_lock = threading.Lock()
        self._result_cache = SearchResultCache(capacity=result_cache_size)

    @classmethod
    def from_dataset(cls, dataset: GeneratedDataset, **kwargs) -> "Pipeline":
        """Build from a :class:`GeneratedDataset` (synthetic testbed)."""
        return cls(
            corpus=dataset.corpus,
            ontology=dataset.ontology,
            training_papers=dataset.training_papers,
            **kwargs,
        )

    @classmethod
    def from_directory(cls, data_dir, **kwargs) -> "Pipeline":
        """Build from a data directory using the standard file layout.

        Expects ``corpus.jsonl`` (one Paper per line), ``ontology.obo``,
        and ``training.json`` (``{term_id: [paper_id, ...]}``) -- the
        layout ``repro generate`` writes and the layout to use for real
        data.  Raises ``FileNotFoundError`` naming the first missing file.
        """
        import json
        from pathlib import Path

        from repro.corpus.io import read_corpus_jsonl
        from repro.ontology.obo import read_obo

        data = Path(data_dir)
        for name in ("corpus.jsonl", "ontology.obo", "training.json"):
            if not (data / name).exists():
                raise FileNotFoundError(
                    f"{data / name} not found (run `repro generate` or place "
                    f"your own data there)"
                )
        corpus = read_corpus_jsonl(data / "corpus.jsonl")
        ontology = read_obo(data / "ontology.obo")
        training_path = data / "training.json"
        with open(training_path, "r", encoding="utf-8") as handle:
            try:
                training = json.load(handle)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{training_path}: corrupt JSON ({error})"
                ) from error
        return cls(
            corpus=corpus, ontology=ontology, training_papers=training, **kwargs
        )

    # -- shared substrates ----------------------------------------------------------

    @property
    def index(self) -> InvertedIndex:
        if self._index is None:
            self._index = InvertedIndex().index_corpus(self.corpus)
        return self._index

    @property
    def vectors(self) -> PaperVectorStore:
        if self._vectors is None:
            self._vectors = PaperVectorStore(self.corpus, self.index.analyzer)
        return self._vectors

    @property
    def tokens(self) -> AnalyzedPaperCache:
        if self._tokens is None:
            self._tokens = AnalyzedPaperCache(self.corpus, self.index.analyzer)
        return self._tokens

    @property
    def citation_graph(self) -> CitationGraph:
        if self._graph is None:
            self._graph = CitationGraph.from_corpus(self.corpus)
        return self._graph

    @property
    def keyword_engine(self) -> KeywordSearchEngine:
        """The PubMed-style baseline search engine."""
        if self._keyword_engine is None:
            self._keyword_engine = KeywordSearchEngine(self.index)
        return self._keyword_engine

    # -- context paper sets -----------------------------------------------------------

    @property
    def text_paper_set(self) -> ContextPaperSet:
        """The text-based context paper set (section 4, first builder)."""
        if self._text_paper_set is None:
            self._text_assigner = TextContextAssigner(
                self.corpus,
                self.ontology,
                self.vectors,
                self.index,
                similarity_threshold=self.text_similarity_threshold,
            )
            self._text_paper_set = self._text_assigner.build(self.training_papers)
        return self._text_paper_set

    @property
    def representatives(self) -> Dict[str, str]:
        """Representative paper per context of the text paper set.

        When the paper set was loaded from a precomputed artefact (no
        assigner ran), representatives are re-derived from the stored
        training papers -- the selection is deterministic, so this
        reproduces the original choice.
        """
        if self._representatives is not None:
            return dict(self._representatives)
        paper_set = self.text_paper_set
        if self._text_assigner is not None:
            self._representatives = dict(self._text_assigner.representatives)
        else:
            from repro.core.representative import select_representatives

            self._representatives = select_representatives(self.vectors, paper_set)
        return dict(self._representatives)

    @property
    def pattern_paper_set(self) -> ContextPaperSet:
        """The pattern-based context paper set (section 4, second builder)."""
        if self._pattern_paper_set is None:
            _ = self.pattern_assigner  # runs the build, which installs the set
        return self._pattern_paper_set

    @property
    def pattern_assigner(self) -> PatternContextAssigner:
        """The pattern assigner, running pattern construction on first use.

        When the pattern paper set was hydrated from a workspace, the
        assigner has not run; accessing it (only pattern-*score* builds
        do) re-runs pattern construction while keeping the loaded set.
        """
        if self._pattern_assigner is None:
            assigner = PatternContextAssigner(
                self.corpus, self.ontology, self.index, token_cache=self.tokens
            )
            built = assigner.build(self.training_papers)
            if self._pattern_paper_set is None:
                self._pattern_paper_set = built
            self._pattern_assigner = assigner
        return self._pattern_assigner

    # -- precomputed artefacts ------------------------------------------------------------

    def load_precomputed(self, data_dir) -> int:
        """Load paper-set/score artefacts from a directory of JSON files.

        Any ``text_paper_set.json`` / ``pattern_paper_set.json`` /
        ``scores_<function>_<set>.json`` found is installed into the
        pipeline's caches, short-circuiting the expensive builds.  Returns
        the number of artefacts loaded.  Missing files are fine (you can
        precompute a subset); corrupt files raise.  For full zero-rebuild
        hydration of every substrate use :meth:`open_workspace` instead.
        """
        from pathlib import Path

        from repro.core.io import read_context_paper_set, read_prestige_scores

        data = Path(data_dir)
        loaded = 0
        text_set = data / "text_paper_set.json"
        if text_set.exists():
            self._text_paper_set = read_context_paper_set(text_set, self.ontology)
            loaded += 1
        pattern_set = data / "pattern_paper_set.json"
        if pattern_set.exists():
            self._pattern_paper_set = read_context_paper_set(
                pattern_set, self.ontology
            )
            loaded += 1
        for scores_path in sorted(data.glob("scores_*_*.json")):
            # Filename is scores_<function>_<set>; the *function* may itself
            # contain underscores ("citation_xctx"), the paper-set name never
            # does -- so split the set off from the right, not the left.
            function, _, paper_set_name = scores_path.stem[len("scores_"):].rpartition(
                "_"
            )
            if not function or not paper_set_name:
                continue
            self._scores[f"{function}/{paper_set_name}"] = read_prestige_scores(
                scores_path
            )
            loaded += 1
        if loaded:
            self.invalidate_serving_caches()
        return loaded

    def invalidate_serving_caches(self) -> None:
        """Drop memoised search engines and cached search results.

        Called automatically whenever an artifact that feeds ranking is
        (re)installed -- :meth:`load_precomputed`, workspace hydration --
        and available for explicit use after hand-mutating pipeline
        state.  Cheap when the caches are already empty.
        """
        with self._engines_lock:
            self._engines.clear()
        self._result_cache.clear()

    # -- workspace (artifact graph) ------------------------------------------------

    @classmethod
    def open_workspace(
        cls, data_dir, workspace_dir=None, strict: bool = True, **kwargs
    ) -> "Pipeline":
        """Open a data directory and hydrate every cache from its workspace.

        The generalisation of :meth:`load_precomputed`: a workspace built
        by ``repro build`` (see :mod:`repro.workspace`) holds *all* heavy
        substrates -- index, vectors, token cache, citation graph, paper
        sets, representatives, prestige scores -- so a fully-built
        workspace opens with zero rebuilds.

        ``workspace_dir`` defaults to ``<data_dir>/workspace``.  With
        ``strict=True`` any missing or stale artifact raises
        :class:`~repro.workspace.builder.StaleWorkspaceError`; with
        ``strict=False`` stale artifacts are skipped and rebuilt lazily
        on first use.
        """
        from pathlib import Path

        from repro.workspace import open_workspace as _open

        pipeline = cls.from_directory(data_dir, **kwargs)
        if workspace_dir is None:
            workspace_dir = Path(data_dir) / "workspace"
        _open(pipeline, workspace_dir, strict=strict)
        return pipeline

    def build_workspace(
        self, workspace_dir, only=None, force: bool = False
    ):
        """Build (incrementally) the on-disk workspace for this pipeline.

        Returns the :class:`~repro.workspace.builder.BuildReport` listing
        what was built and what was already fresh.
        """
        from repro.workspace import WorkspaceBuilder

        return WorkspaceBuilder(self, workspace_dir).build(only=only, force=force)

    # -- prestige scores ------------------------------------------------------------------

    def prestige(self, function: str, paper_set_name: str = "text") -> PrestigeScores:
        """Memoised prestige scores.

        ``function`` in {"citation", "text", "pattern", "hits"};
        ``paper_set_name`` in {"text", "pattern"} selects the context
        paper set, matching section 4's two experiment arms ("hits" is the
        section-3.1 alternative the paper mentions but does not adopt).
        """
        key = f"{function}/{paper_set_name}"
        if key in self._scores:
            return self._scores[key]
        with span("pipeline.prestige", function=function, paper_set=paper_set_name):
            return self._compute_prestige(function, paper_set_name, key)

    def _compute_prestige(
        self, function: str, paper_set_name: str, key: str
    ) -> PrestigeScores:
        get_registry().counter("pipeline.prestige.computed").inc()
        paper_set = (
            self.text_paper_set if paper_set_name == "text" else self.pattern_paper_set
        )
        if function == "citation":
            scorer = CitationPrestige(self.citation_graph)
        elif function == "hits":
            scorer = HitsPrestige(self.citation_graph)
        elif function == "text":
            scorer = TextPrestige(
                self.corpus,
                self.vectors,
                self.citation_graph,
                self.representatives,
            )
        elif function == "pattern":
            scorer = PatternPrestige(
                self.pattern_assigner.pattern_sets,
                self.tokens,
                middle_only=True,
            )
        else:
            raise ValueError(f"unknown prestige function {function!r}")
        scores = scorer.score_all(paper_set)
        self._scores[key] = scores
        return scores

    # -- search ------------------------------------------------------------------------

    def search_engine(
        self,
        function: str = "text",
        paper_set_name: str = "text",
        selection_strategy: str = "probe",
    ) -> ContextSearchEngine:
        """A context search engine over the chosen paper set + prestige.

        Engines are memoised per (function, paper set, selection
        strategy): constructing one costs nothing, but a *warm* engine
        carries per-context caches worth keeping across queries -- the
        paper's pre-process-once/serve-many discipline.  The
        ``representative`` strategy is wired to the pipeline's vector
        store and representatives map automatically.
        """
        if selection_strategy not in SELECTION_STRATEGIES:
            raise ValueError(
                f"selection_strategy must be one of {SELECTION_STRATEGIES}, "
                f"got {selection_strategy!r}"
            )
        key = (function, paper_set_name, selection_strategy)
        with self._engines_lock:
            engine = self._engines.get(key)
            if engine is not None:
                return engine
        # Build outside the lock: prestige/paper-set computation can be
        # expensive and must not serialise unrelated engine lookups.
        paper_set = (
            self.text_paper_set if paper_set_name == "text" else self.pattern_paper_set
        )
        engine = ContextSearchEngine(
            self.ontology,
            paper_set,
            self.prestige(function, paper_set_name),
            self.keyword_engine,
            w_prestige=self.w_prestige,
            w_matching=self.w_matching,
            selection_strategy=selection_strategy,
            vectors=(
                self.vectors if selection_strategy == "representative" else None
            ),
            representatives=(
                self.representatives
                if selection_strategy == "representative"
                else None
            ),
        )
        with self._engines_lock:
            return self._engines.setdefault(key, engine)

    def search(
        self,
        query: str,
        function: str = "text",
        paper_set_name: str = "text",
        limit: Optional[int] = 10,
        threshold: float = 0.0,
        selection_strategy: str = "probe",
        use_cache: bool = True,
    ) -> List[SearchHit]:
        """One-call context-based search with sensible defaults.

        Results are served from a bounded LRU cache when an identical
        request (same query, function, paper set, strategy, limit,
        threshold) was answered since the last artifact change; pass
        ``use_cache=False`` to force a fresh evaluation.
        """
        key = (query, function, paper_set_name, selection_strategy, limit, threshold)
        with span(
            "pipeline.search",
            query=query,
            function=function,
            paper_set=paper_set_name,
        ) as trace:
            if use_cache:
                cached = self._result_cache.get(key)
                if cached is not None:
                    trace.set(cache="hit", hits=len(cached))
                    return cached
            engine = self.search_engine(function, paper_set_name, selection_strategy)
            hits = engine.search(query, threshold=threshold, limit=limit)
            if use_cache:
                trace.set(cache="miss")
                self._result_cache.put(key, hits)
            return hits

    def search_many(
        self,
        queries: Sequence[str],
        function: str = "text",
        paper_set_name: str = "text",
        limit: Optional[int] = 10,
        threshold: float = 0.0,
        selection_strategy: str = "probe",
        max_workers: int = 4,
        use_cache: bool = True,
    ) -> List[List[SearchHit]]:
        """Batch search: answer independent queries concurrently.

        Cached queries are answered inline; the misses fan out through
        :meth:`ContextSearchEngine.search_many` on a thread pool.  The
        returned list is index-aligned with ``queries`` (deterministic
        merge), and each miss populates the result cache.
        """
        queries = list(queries)
        with span(
            "pipeline.search_many",
            queries=len(queries),
            function=function,
            paper_set=paper_set_name,
        ) as trace:
            results: List[Optional[List[SearchHit]]] = [None] * len(queries)
            misses: List[int] = []
            for position, query in enumerate(queries):
                key = (
                    query, function, paper_set_name, selection_strategy,
                    limit, threshold,
                )
                cached = self._result_cache.get(key) if use_cache else None
                if cached is not None:
                    results[position] = cached
                else:
                    misses.append(position)
            trace.set(cached=len(queries) - len(misses))
            if misses:
                engine = self.search_engine(
                    function, paper_set_name, selection_strategy
                )
                fresh = engine.search_many(
                    [queries[i] for i in misses],
                    max_workers=max_workers,
                    threshold=threshold,
                    limit=limit,
                )
                for position, hits in zip(misses, fresh):
                    results[position] = hits
                    if use_cache:
                        key = (
                            queries[position], function, paper_set_name,
                            selection_strategy, limit, threshold,
                        )
                        self._result_cache.put(key, hits)
            return [hits if hits is not None else [] for hits in results]

    # -- experiment views ----------------------------------------------------------------

    def experiment_paper_set(self, paper_set_name: str = "text") -> ContextPaperSet:
        """The paper set with small contexts excluded (experiment view)."""
        paper_set = (
            self.text_paper_set if paper_set_name == "text" else self.pattern_paper_set
        )
        return paper_set.filter_small(self.min_context_size)


def build_demo_pipeline(
    seed: int = 0,
    n_papers: int = 800,
    n_terms: int = 120,
    max_depth: int = 6,
    **pipeline_kwargs,
) -> Pipeline:
    """Generate a seeded synthetic dataset and wrap it in a Pipeline."""
    generator = CorpusGenerator(
        n_papers=n_papers,
        ontology_generator=OntologyGenerator(n_terms=n_terms, max_depth=max_depth),
    )
    dataset = generator.generate(seed=seed)
    return Pipeline.from_dataset(dataset, **pipeline_kwargs)
