"""Figure 5.2 -- precision vs relevancy threshold, pattern-based context paper set.

Paper series: average and median precision of the *pattern-based* and the
*citation-based* score functions.  Expected shape: pattern precision
about 10% above citation when t > 0.2 (we reproduce direction and
crossover, not the exact margin).
"""

from conftest import write_result

from repro.eval.ascii_plot import ascii_line_chart


def test_fig_5_2_precision_pattern_paper_set(
    benchmark, precision_experiment, results_dir
):
    def run():
        pattern_curve = precision_experiment.run("pattern", "pattern")
        citation_curve = precision_experiment.run("citation", "pattern")
        return pattern_curve, citation_curve

    pattern_curve, citation_curve = benchmark.pedantic(run, rounds=1, iterations=1)

    chart = ascii_line_chart(
        {
            "pattern": pattern_curve.average,
            "citation": citation_curve.average,
        },
        x_labels=[f"{t:.2f}" for t in pattern_curve.thresholds],
        y_max=1.0,
    )
    table = "\n\n".join(
        [
            pattern_curve.format_table(),
            citation_curve.format_table(),
            "average precision vs threshold:",
            chart,
        ]
    )
    write_result(results_dir, "fig_5_2", table)

    above = [i for i, t in enumerate(pattern_curve.thresholds) if t > 0.2]
    pattern_avg = sum(pattern_curve.average[i] for i in above) / len(above)
    citation_avg = sum(citation_curve.average[i] for i in above) / len(above)
    assert pattern_avg > citation_avg, (
        f"pattern precision {pattern_avg:.3f} must beat citation "
        f"{citation_avg:.3f} for t > 0.2"
    )
    # Pattern precision rises (or holds) with threshold; citation decays
    # relative to its low-t start.
    assert citation_curve.average[-1] < citation_curve.average[0]
