"""Relevancy-weight calibration.

The paper leaves w_prestige / w_matching and the relevancy threshold
open.  :class:`RelevancyTuner` grid-searches them against AC-answer sets
on a validation query set, optimising F1 (precision alone rewards
degenerate near-empty result sets; recall alone rewards returning
everything -- the harmonic mean keeps the operating point honest).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.search import ContextSearchEngine
from repro.eval.ac_answer import ACAnswerBuilder
from repro.pipeline import Pipeline


@dataclass(frozen=True)
class TuningPoint:
    """One grid cell's validation metrics."""

    w_prestige: float
    threshold: float
    precision: float
    recall: float
    f1: float
    empty_queries: int


@dataclass
class TuningResult:
    """The full grid plus the F1-best cell."""

    points: List[TuningPoint]
    best: TuningPoint

    def format_table(self) -> str:
        lines = ["w_p    t      prec   recall f1     empty"]
        for point in self.points:
            marker = " *" if point == self.best else ""
            lines.append(
                f"{point.w_prestige:.2f}   {point.threshold:.2f}   "
                f"{point.precision:.3f}  {point.recall:.3f}  "
                f"{point.f1:.3f}  {point.empty_queries}{marker}"
            )
        return "\n".join(lines)


class RelevancyTuner:
    """Grid search over (w_prestige, threshold) for one score function."""

    def __init__(
        self,
        pipeline: Pipeline,
        queries: Sequence[str],
        function: str = "text",
        paper_set_name: str = "text",
        ac_builder: Optional[ACAnswerBuilder] = None,
        max_workers: int = 4,
    ) -> None:
        if not queries:
            raise ValueError("need at least one validation query")
        self.pipeline = pipeline
        self.queries = list(queries)
        self.max_workers = max_workers
        self.function = function
        self.paper_set_name = paper_set_name
        self.ac_builder = (
            ac_builder
            if ac_builder is not None
            else ACAnswerBuilder(
                pipeline.keyword_engine,
                pipeline.vectors,
                pipeline.citation_graph,
            )
        )
        self._answers: Dict[str, frozenset] = {}

    def tune(
        self,
        w_prestige_grid: Sequence[float] = (0.3, 0.5, 0.7, 0.9),
        threshold_grid: Sequence[float] = (0.1, 0.2, 0.3, 0.4),
    ) -> TuningResult:
        """Evaluate the grid; returns every point plus the F1-best.

        Search hits per (query, w_prestige) are computed once and
        re-thresholded for every threshold cell, so the grid costs
        |w grid| x |queries| searches, not the full product.
        """
        if not w_prestige_grid or not threshold_grid:
            raise ValueError("grids must be non-empty")
        paper_set = self.pipeline.paper_set(self.paper_set_name)
        prestige = self.pipeline.prestige(self.function, self.paper_set_name)
        points: List[TuningPoint] = []
        for w_prestige in w_prestige_grid:
            engine = ContextSearchEngine(
                self.pipeline.ontology,
                paper_set,
                prestige,
                self.pipeline.keyword_engine,
                w_prestige=w_prestige,
                w_matching=1.0 - w_prestige,
            )
            hits_per_query = list(
                zip(
                    self.queries,
                    engine.search_many(self.queries, max_workers=self.max_workers),
                )
            )
            for threshold in threshold_grid:
                points.append(
                    self._evaluate_cell(w_prestige, threshold, hits_per_query)
                )
        best = max(points, key=lambda p: (p.f1, -p.threshold))
        return TuningResult(points=points, best=best)

    # -- internals --------------------------------------------------------------------

    def _answer_set(self, query: str) -> frozenset:
        cached = self._answers.get(query)
        if cached is None:
            cached = self.ac_builder.build(query).papers
            self._answers[query] = cached
        return cached

    def _evaluate_cell(
        self,
        w_prestige: float,
        threshold: float,
        hits_per_query: List[Tuple[str, list]],
    ) -> TuningPoint:
        precisions: List[float] = []
        recalls: List[float] = []
        empty = 0
        for query, hits in hits_per_query:
            answers = self._answer_set(query)
            surviving = {h.paper_id for h in hits if h.relevancy >= threshold}
            if not surviving:
                empty += 1
                precisions.append(0.0)
                recalls.append(0.0)
                continue
            true_positives = len(surviving & answers)
            precisions.append(true_positives / len(surviving))
            recalls.append(true_positives / len(answers) if answers else 0.0)
        mean_precision = sum(precisions) / len(precisions)
        mean_recall = sum(recalls) / len(recalls)
        denominator = mean_precision + mean_recall
        f1 = 2 * mean_precision * mean_recall / denominator if denominator else 0.0
        return TuningPoint(
            w_prestige=w_prestige,
            threshold=threshold,
            precision=mean_precision,
            recall=mean_recall,
            f1=f1,
            empty_queries=empty,
        )
