#!/usr/bin/env python
"""Faceted search front end: grouped results with snippets.

The paradigm's actual user experience: results arrive *grouped by
context* ("search results in each context are ranked by their relevancy
scores"), each with a query-aware snippet -- what a digital-library UI
would render.  Also demonstrates query expansion when the bare query is
too narrow.

Run:  python examples/faceted_search_ui.py
"""

from repro import build_demo_pipeline
from repro.core.query_expansion import ContextQueryExpander
from repro.index.snippets import best_snippet


def main() -> None:
    pipeline = build_demo_pipeline(seed=19, n_papers=700, n_terms=120)
    engine = pipeline.search_engine("text", "text")

    term_id = pipeline.ontology.terms_at_level(4)[0]
    query = " ".join(pipeline.ontology.term(term_id).name_words()[:2])
    print(f"Query: {query!r}\n")

    groups = engine.search_grouped(query, max_contexts=3, per_context_limit=3)
    if not groups:
        print("no results")
        return

    for group in groups:
        term = pipeline.ontology.term(group.context_id)
        print(f"=== {term.name}  (selection strength {group.selection_strength:.3f})")
        for hit in group.hits:
            paper = pipeline.corpus.paper(hit.paper_id)
            print(f"  {hit.relevancy:.3f}  [{hit.paper_id}] {paper.title[:55]}")
            snippet = best_snippet(paper, query, window=14)
            if snippet is not None:
                print(f"          “{snippet.text[:90]}”")
        print()

    # Query expansion: grow the query with the selected contexts' shared
    # vocabulary and compare the result counts.
    expander = ContextQueryExpander(
        pipeline.vectors, pipeline.representatives, max_added_terms=3
    )
    expanded = expander.expand(query, [g.context_id for g in groups])
    before = len(engine.search(query))
    after = len(engine.search(expanded))
    print(f"query expansion: {query!r} -> {expanded!r}")
    print(f"merged result count: {before} -> {after}")


if __name__ == "__main__":
    main()
