"""Ablation A5 -- context-selection strategies (task 3 of the paradigm).

The paper selects contexts "automatically based on the search term" but
does not specify how.  This bench compares the three implemented
strategies -- keyword probe (default), term-name lookup (GoPubMed-style),
and representative-similarity -- on precision at the figure-5.1 operating
point and on how many queries find any context at all.
"""

from conftest import write_result

from repro.core.search import ContextSearchEngine
from repro.eval.metrics import precision

THRESHOLD = 0.3


def test_ablation_selection_strategies(
    benchmark, pipeline, queries, precision_experiment, results_dir
):
    def make_engine(strategy):
        kwargs = {}
        if strategy == "representative":
            kwargs = {
                "vectors": pipeline.vectors,
                "representatives": pipeline.representatives,
            }
        return ContextSearchEngine(
            pipeline.ontology,
            pipeline.text_paper_set,
            pipeline.prestige("text", "text"),
            pipeline.keyword_engine,
            w_prestige=pipeline.w_prestige,
            w_matching=pipeline.w_matching,
            selection_strategy=strategy,
            **kwargs,
        )

    def run():
        results = {}
        for strategy in ("probe", "name", "representative"):
            engine = make_engine(strategy)
            values = []
            answered = 0
            for query in queries:
                answers = precision_experiment.answer_set(query)
                hits = engine.search(query)
                if hits:
                    answered += 1
                surviving = [h.paper_id for h in hits if h.relevancy >= THRESHOLD]
                value = precision(surviving, answers)
                values.append(0.0 if value is None else value)
            results[strategy] = (sum(values) / len(values), answered)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"text scores, precision at t={THRESHOLD}, {len(queries)} queries:"]
    for strategy, (avg, answered) in results.items():
        lines.append(
            f"  {strategy:<15} precision={avg:.3f}  queries-with-results={answered}"
        )
    write_result(results_dir, "ablation_selection", "\n".join(lines))

    # The probe strategy must answer at least as many queries as pure
    # term-name lookup (queries rarely contain exact term-name words).
    assert results["probe"][1] >= results["name"][1]
    for avg, _ in results.values():
        assert 0.0 <= avg <= 1.0
