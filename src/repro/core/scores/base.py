"""Common prestige-score machinery.

Every score function maps ``(context, paper) -> prestige in [0, 1]``.
This module provides:

- the :class:`PrestigeScoreFunction` interface;
- :class:`PrestigeScores`, the computed result over a whole context paper
  set;
- min-max normalisation (each function's raw scale differs wildly --
  PageRank probabilities vs. pattern sums -- and the relevancy formula of
  section 3 needs them commensurable);
- hierarchy max-propagation: section 3 modifies p's score in context ci to
  ``max(s_i, s_k, ..., s_n)`` over ci's descendant contexts containing p,
  because high prestige in a more specific descendant implies high
  relevance to the ancestor.
"""

from __future__ import annotations

import abc
import re
from typing import Dict, Mapping, Optional

from repro.core.context import Context, ContextPaperSet
from repro.obs import get_registry, span

_METRIC_SEGMENT_SUB = re.compile(r"[^a-z0-9_]+")


def min_max_normalize(scores: Mapping[str, float]) -> Dict[str, float]:
    """Rescale to [0, 1] by (x - min) / (max - min).

    Constant inputs map to 0.0 for every paper: a context whose raw
    scores are all equal carries no *relative* evidence, and min-max is
    the spread-only view.  Use :func:`max_normalize` when the raw floor is
    meaningful (PageRank's teleport floor keeps every paper at a positive
    baseline -- the paper's "small number of unique scores" regime, where
    tied papers are equally important rather than all unimportant).
    """
    if not scores:
        return {}
    values = scores.values()
    low, high = min(values), max(values)
    spread = high - low
    if spread == 0.0:
        return {paper_id: 0.0 for paper_id in scores}
    return {pid: (value - low) / spread for pid, value in scores.items()}


def max_normalize(scores: Mapping[str, float]) -> Dict[str, float]:
    """Rescale to [0, 1] by x / max, preserving the raw score *floor*.

    The section-3 relevancy formula mixes prestige with text matching, so
    the absolute level of a context's scores matters: per-context PageRank
    on a sparse citation subgraph leaves most papers at the teleport
    floor, and dividing by the max keeps them at a high shared value --
    "papers with the same scores are considered equally important", which
    is exactly the ranking weakness (everyone survives the relevancy
    threshold together) the paper attributes to citation-based scores.
    All-zero or negative-max inputs map to 0.0.
    """
    if not scores:
        return {}
    high = max(scores.values())
    if high <= 0.0:
        return {paper_id: 0.0 for paper_id in scores}
    return {pid: max(value, 0.0) / high for pid, value in scores.items()}


#: Normalisation registry for :meth:`PrestigeScoreFunction.score_all`.
NORMALIZERS = {
    "minmax": min_max_normalize,
    "max": max_normalize,
    "none": dict,
}


class PrestigeScores:
    """Prestige of every paper in every context, for one score function.

    ``pre_propagation`` optionally retains the per-context scores as they
    were *before* hierarchy max-propagation.  Incremental prestige
    patching needs them: propagation mixes descendant scores into
    ancestors, so patching a changed context requires re-running the
    propagation pass over pre-propagation values, not the merged ones.
    Scores loaded from a workspace artifact carry ``None`` here (the
    artifact stores only final scores) and fall back to full recompute.
    """

    def __init__(
        self,
        function_name: str,
        by_context: Dict[str, Dict[str, float]],
        pre_propagation: Optional[Dict[str, Dict[str, float]]] = None,
    ) -> None:
        self.function_name = function_name
        self._by_context = by_context
        self.pre_propagation = pre_propagation

    def of(self, context_id: str) -> Dict[str, float]:
        """``paper_id -> prestige`` within one context (empty if unknown)."""
        return dict(self._by_context.get(context_id, {}))

    def score(self, context_id: str, paper_id: str, default: float = 0.0) -> float:
        """Prestige of one paper in one context."""
        return self._by_context.get(context_id, {}).get(paper_id, default)

    def context_ids(self):
        return list(self._by_context)

    def __contains__(self, context_id: str) -> bool:
        return context_id in self._by_context

    def __len__(self) -> int:
        return len(self._by_context)


def propagate_max_over_descendants(
    paper_set: ContextPaperSet, by_context: Dict[str, Dict[str, float]]
) -> Dict[str, Dict[str, float]]:
    """Apply section 3's max-over-descendant-contexts score modification.

    For each context ci and paper p in ci, the final score is the maximum
    of p's scores over ci and every descendant context of ci that contains
    p.  Contexts missing from ``by_context`` contribute nothing.
    """
    result: Dict[str, Dict[str, float]] = {}
    for context_id, scores in by_context.items():
        merged = dict(scores)
        for descendant_id in paper_set.descendants_in_set(context_id):
            descendant_scores = by_context.get(descendant_id)
            if not descendant_scores:
                continue
            for paper_id in merged:
                candidate = descendant_scores.get(paper_id)
                if candidate is not None and candidate > merged[paper_id]:
                    merged[paper_id] = candidate
        result[context_id] = merged
    return result


class PrestigeScoreFunction(abc.ABC):
    """Interface of the three section-3 score functions."""

    #: Short name used in experiment tables ("citation", "text", "pattern").
    name: str = "abstract"

    @abc.abstractmethod
    def score_context(self, context: Context) -> Dict[str, float]:
        """Raw (pre-normalisation) scores for every paper in ``context``.

        Implementations may return an empty mapping when the context
        cannot be scored (e.g. no representative paper).
        """

    #: Default per-context normaliser; subclasses override when the raw
    #: scale calls for it (citation scores keep their teleport floor).
    normalization: str = "minmax"

    def score_all(
        self,
        paper_set: ContextPaperSet,
        normalize: Optional[str] = None,
        propagate: bool = True,
    ) -> PrestigeScores:
        """Score every context; normalise and max-propagate.

        ``normalize`` is a :data:`NORMALIZERS` key ("minmax", "max",
        "none"); None uses the function's own default.  Normalisation
        happens per context *before* propagation so that a descendant's
        scores are commensurable with the ancestor's when the max is
        taken -- both live in [0, 1].
        """
        key = normalize if normalize is not None else self.normalization
        try:
            normalizer = NORMALIZERS[key]
        except KeyError:
            raise ValueError(
                f"unknown normalization {key!r}; expected one of "
                f"{sorted(NORMALIZERS)}"
            ) from None
        registry = get_registry()
        # Score-function names are free-form ("citation-xctx"); fold them
        # into one valid metric segment so the dotted convention holds.
        metric_name = (
            _METRIC_SEGMENT_SUB.sub("_", self.name.lower()).lstrip("_0123456789")
            or "unnamed"
        )
        with span(
            f"scores.{metric_name}.score_all", normalize=key
        ) as trace, registry.timer(f"scores.{metric_name}.seconds"):
            by_context: Dict[str, Dict[str, float]] = {}
            papers_scored = 0
            for context in paper_set:
                raw = self.score_context(context)
                if not raw:
                    continue
                papers_scored += len(raw)
                scored = normalizer(raw)
                if context.decay != 1.0:
                    scored = {pid: s * context.decay for pid, s in scored.items()}
                by_context[context.term_id] = scored
            pre_propagation = None
            if propagate:
                pre_propagation = by_context
                by_context = propagate_max_over_descendants(paper_set, by_context)
            trace.set(contexts_scored=len(by_context), papers_scored=papers_scored)
        registry.counter(f"scores.{metric_name}.contexts_scored").inc(len(by_context))
        registry.counter(f"scores.{metric_name}.papers_scored").inc(papers_scored)
        return PrestigeScores(self.name, by_context, pre_propagation=pre_propagation)

    def score_contexts(
        self,
        paper_set: ContextPaperSet,
        context_ids,
        normalize: Optional[str] = None,
    ) -> Dict[str, Dict[str, float]]:
        """Pre-propagation scores for a subset of contexts.

        The incremental-update path scores only the contexts whose paper
        sets changed, then merges the result into an existing
        :attr:`PrestigeScores.pre_propagation` map and re-runs
        propagation.  Normalisation and decay match :meth:`score_all`
        exactly.  Contexts that cannot be scored map to an *absent* entry,
        mirroring ``score_all``'s skip of empty raw scores.
        """
        key = normalize if normalize is not None else self.normalization
        normalizer = NORMALIZERS[key]
        wanted = set(context_ids)
        result: Dict[str, Dict[str, float]] = {}
        for context in paper_set:
            if context.term_id not in wanted:
                continue
            raw = self.score_context(context)
            if not raw:
                continue
            scored = normalizer(raw)
            if context.decay != 1.0:
                scored = {pid: s * context.decay for pid, s in scored.items()}
            result[context.term_id] = scored
        return result
