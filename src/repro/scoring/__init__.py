"""Pluggable score-function registry (see ``docs/architecture.md``).

Importing this package registers the built-in functions (``text``,
``citation``, ``pattern``, ``hits``) and the ``combined`` rank-fusion
plugin.  Everything downstream -- prestige dispatch, CLI choices,
workspace score artifacts, evaluation sweeps -- derives its function
lists from here.
"""

from repro.scoring.registry import (
    PAPER_SET_NAMES,
    ScoreFunctionSpec,
    evaluation_arms,
    function_names,
    get,
    is_registered,
    overlap_pairs,
    register,
    registry_revision,
    specs,
    temporary_registration,
    unregister,
)

# Importing these modules runs their register() calls.
from repro.scoring import functions as _functions  # noqa: F401  (registers built-ins)
from repro.scoring import combined as _combined  # noqa: F401  (registers the plugin)
from repro.scoring.combined import CombinedPrestige

__all__ = [
    "PAPER_SET_NAMES",
    "ScoreFunctionSpec",
    "CombinedPrestige",
    "evaluation_arms",
    "function_names",
    "get",
    "is_registered",
    "overlap_pairs",
    "register",
    "registry_revision",
    "specs",
    "temporary_registration",
    "unregister",
]
