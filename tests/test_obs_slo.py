"""SLO declarations: parsing, windowed evaluation, error budgets.

Pure-function coverage of :mod:`repro.obs.slo` -- the same evaluation
code backs the live ``/slo`` endpoint and the ``repro obs slo`` dump
renderer, so everything here is exercised with hand-built events.
"""

import pytest

from repro.obs import (
    DEFAULT_SLOS,
    QueryEvent,
    SLO,
    evaluate_slo,
    evaluate_slos,
    format_slo_report,
    parse_slo,
)


def _event(ts=0.0, duration_s=0.1, **kwargs):
    return QueryEvent(ts=ts, kind="search", duration_s=duration_s, **kwargs)


class TestParseSlo:
    def test_latency_spec_with_ms_threshold(self):
        slo = parse_slo("search-p95:latency:250ms:95%:300s")
        assert slo.name == "search-p95"
        assert slo.kind == "latency"
        assert slo.threshold_s == pytest.approx(0.25)
        assert slo.target == pytest.approx(0.95)
        assert slo.window_s == pytest.approx(300.0)

    def test_latency_spec_with_seconds_threshold(self):
        slo = parse_slo("slowish:latency:1.5s:90%")
        assert slo.threshold_s == pytest.approx(1.5)
        assert slo.window_s == pytest.approx(300.0)  # default window

    def test_rate_specs(self):
        errors = parse_slo("errs:error_rate:99.9%:60s")
        assert errors.kind == "error_rate"
        assert errors.target == pytest.approx(0.999)
        assert errors.window_s == pytest.approx(60.0)
        cache = parse_slo("hits:cache_hit_rate:25%")
        assert cache.kind == "cache_hit_rate"
        assert cache.threshold_s is None

    def test_spec_round_trips_through_parse(self):
        for slo in DEFAULT_SLOS:
            parsed = parse_slo(slo.spec())
            assert (parsed.name, parsed.kind) == (slo.name, slo.kind)
            # "99.9%" -> 0.999 reintroduces float noise; approx it.
            assert parsed.target == pytest.approx(slo.target)
            assert parsed.window_s == pytest.approx(slo.window_s)
            if slo.kind == "latency":
                assert parsed.threshold_s == pytest.approx(slo.threshold_s)

    @pytest.mark.parametrize(
        "bad",
        [
            "",  # nothing
            "name-only",
            "x:latency:95%",  # latency without threshold
            "x:latency:250:95%",  # threshold missing unit
            "x:error_rate:95",  # target missing %
            "x:error_rate:95%:60",  # window missing s
            "x:bogus_kind:95%",
            ":error_rate:95%",  # empty name
            "x:error_rate:95%:60s:extra",
        ],
    )
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_slo(bad)


class TestParseSloEdgeCases:
    """Fractional values, whitespace, and the documented-syntax errors."""

    @pytest.mark.parametrize(
        "spec, target, window_s",
        [
            ("three-nines:error_rate:99.9%", 0.999, 300.0),
            ("four-nines:error_rate:99.99%:3600s", 0.9999, 3600.0),
            ("subsecond:latency:250ms:99.9%:0.5s", 0.999, 0.5),
            ("fractional:cache_hit_rate:12.5%:90.5s", 0.125, 90.5),
            ("scientific:error_rate:9.95e1%", 0.995, 300.0),
        ],
    )
    def test_fractional_targets_and_windows(self, spec, target, window_s):
        slo = parse_slo(spec)
        assert slo.target == pytest.approx(target)
        assert slo.window_s == pytest.approx(window_s)

    @pytest.mark.parametrize(
        "spec",
        [
            "  padded : error_rate : 95% : 60s  ",
            "padded:latency: 250ms : 95%",
            "\tpadded\t:\terror_rate\t:\t95%\t",
        ],
    )
    def test_whitespace_stripped_around_every_token(self, spec):
        slo = parse_slo(spec)
        assert slo.name == "padded"
        assert slo.target == pytest.approx(0.95)

    @pytest.mark.parametrize(
        "bad",
        [
            "",                                # no tokens at all
            "name-only",                       # too few tokens
            "x:error_rate",                    # still too few
            "x:error_rate:95%:60s:extra",      # too many tokens
            "x:latency:250ms:95%:60s:extra",   # too many (latency form)
            "x:bogus_kind:95%",                # unknown kind
            "x:error_rate:150%",               # target above 100%
            "x:error_rate:0%",                 # target of zero
            "x:error_rate:95%:-60s",           # non-positive window
            "x:latency:-250ms:95%",            # non-positive threshold
        ],
    )
    def test_every_rejection_names_the_offending_spec(self, bad):
        """Malformed input fails as 'bad SLO spec ...', never as a bare
        constructor ValueError or an IndexError from token slicing."""
        with pytest.raises(ValueError, match="bad SLO spec"):
            parse_slo(bad)

    def test_trailing_tokens_error_documents_the_syntax(self):
        with pytest.raises(ValueError, match=r"<name>:<kind>"):
            parse_slo("x:error_rate:95%:60s:extra")


class TestSloValidation:
    def test_target_bounds(self):
        with pytest.raises(ValueError, match="target"):
            SLO("x", "error_rate", target=0.0)
        with pytest.raises(ValueError, match="target"):
            SLO("x", "error_rate", target=1.1)

    def test_latency_needs_threshold(self):
        with pytest.raises(ValueError, match="threshold"):
            SLO("x", "latency", target=0.95)

    def test_kind_checked(self):
        with pytest.raises(ValueError, match="kind"):
            SLO("x", "availability", target=0.99)

    def test_window_positive(self):
        with pytest.raises(ValueError, match="window"):
            SLO("x", "error_rate", target=0.99, window_s=0.0)


class TestEvaluateLatency:
    SLO_95 = SLO("p95", "latency", target=0.95, threshold_s=0.25)

    def test_counts_good_and_bad_by_threshold(self):
        events = [_event(duration_s=0.1)] * 19 + [_event(duration_s=0.9)]
        status = evaluate_slo(self.SLO_95, events, now=0.0)
        assert (status.total, status.good, status.bad) == (20, 19, 1)
        assert status.sli == pytest.approx(0.95)
        assert status.met is True
        assert status.allowed_bad == pytest.approx(1.0)
        assert status.budget_remaining == pytest.approx(0.0)

    def test_errored_events_are_bad_regardless_of_latency(self):
        events = [_event(duration_s=0.01, error=True)]
        status = evaluate_slo(self.SLO_95, events, now=0.0)
        assert status.good == 0 and status.bad == 1
        assert status.met is False

    def test_batches_weigh_by_query_count(self):
        events = [_event(duration_s=0.1, queries=10)]
        status = evaluate_slo(self.SLO_95, events, now=0.0)
        assert status.total == 10 and status.good == 10

    def test_window_excludes_old_events(self):
        slo = SLO("p95", "latency", target=0.95, threshold_s=0.25, window_s=60.0)
        events = [
            _event(ts=0.0, duration_s=9.9),  # outside the window -> ignored
            _event(ts=100.0, duration_s=0.1),
        ]
        status = evaluate_slo(slo, events, now=120.0)
        assert status.total == 1
        assert status.met is True


class TestEvaluateRates:
    def test_error_rate(self):
        slo = SLO("errs", "error_rate", target=0.5)
        events = [_event(), _event(error=True), _event(), _event(error=True)]
        status = evaluate_slo(slo, events, now=0.0)
        assert status.sli == pytest.approx(0.5)
        assert status.met is True
        assert status.budget_remaining == pytest.approx(0.0)

    def test_cache_hit_rate_uses_lookups_not_requests(self):
        slo = SLO("hits", "cache_hit_rate", target=0.25)
        events = [
            _event(cache_hits=3, cache_lookups=4),
            _event(),  # no lookups: contributes nothing
        ]
        status = evaluate_slo(slo, events, now=0.0)
        assert status.total == 4 and status.good == 3
        assert status.met is True


class TestErrorBudget:
    def test_no_data_means_full_budget_and_no_verdict(self):
        status = evaluate_slo(DEFAULT_SLOS[0], [], now=0.0)
        assert status.total == 0
        assert status.sli is None and status.met is None
        assert status.budget_remaining == pytest.approx(1.0)

    def test_budget_drains_linearly_and_clamps(self):
        slo = SLO("errs", "error_rate", target=0.9)  # 10% allowance
        good = [_event()] * 18
        one_bad = evaluate_slo(slo, good + [_event(error=True)] * 2, now=0.0)
        assert one_bad.allowed_bad == pytest.approx(2.0)
        assert one_bad.budget_remaining == pytest.approx(0.0)
        overdrawn = evaluate_slo(slo, good + [_event(error=True)] * 6, now=0.0)
        assert overdrawn.budget_remaining == 0.0  # clamped, not negative

    def test_perfect_target_budget_is_binary(self):
        slo = SLO("strict", "error_rate", target=1.0)
        clean = evaluate_slo(slo, [_event()] * 5, now=0.0)
        assert clean.budget_remaining == 1.0 and clean.met is True
        dirty = evaluate_slo(slo, [_event(), _event(error=True)], now=0.0)
        assert dirty.budget_remaining == 0.0 and dirty.met is False


class TestReport:
    def test_evaluate_slos_preserves_order(self):
        statuses = evaluate_slos(DEFAULT_SLOS, [], now=0.0)
        assert [status.slo.name for status in statuses] == [
            slo.name for slo in DEFAULT_SLOS
        ]

    def test_format_slo_report_states(self):
        events = [_event(duration_s=0.1, cache_hits=0, cache_lookups=4)]
        statuses = [
            status.to_dict()
            for status in evaluate_slos(DEFAULT_SLOS, events, now=0.0)
        ]
        report = format_slo_report(statuses)
        assert "search-latency-p95" in report
        assert "OK" in report
        assert "VIOLATED" in report  # cache-hit SLO: 0/4 hits

    def test_format_slo_report_empty(self):
        assert format_slo_report([]) == "(no SLOs declared)"

    def test_status_dict_is_json_ready(self):
        import json

        status = evaluate_slo(DEFAULT_SLOS[0], [_event()], now=0.0)
        assert json.loads(json.dumps(status.to_dict()))["name"] == (
            "search-latency-p95"
        )
