"""Real-data ingestion: PubMed/MEDLINE XML and GO annotation (GAF) files.

The paper's testbed was 72,027 parsed PubMed papers annotated against the
Gene Ontology.  This package provides the parsers a user needs to rebuild
that testbed from public data:

- :mod:`repro.ingest.medline` -- stream a MEDLINE/PubMed XML export into
  :class:`~repro.corpus.paper.Paper` records (PMID, title, abstract,
  authors, MeSH terms as index terms, year, reference PMIDs);
- :mod:`repro.ingest.gaf` -- read GO Annotation File (GAF 2.x) rows into
  the per-term training map (PMID evidence references, filtered by
  evidence code).

Identifiers are normalised to ``PMID:<n>`` on both sides so the corpus
and the training map line up.
"""

from repro.ingest.gaf import EXPERIMENTAL_EVIDENCE_CODES, read_gaf_training_map
from repro.ingest.medline import read_medline_xml

__all__ = [
    "read_medline_xml",
    "read_gaf_training_map",
    "EXPERIMENTAL_EVIDENCE_CODES",
]
