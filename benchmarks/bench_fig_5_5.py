"""Figure 5.5 -- text-score SD histograms per context level (text paper set).

Paper observation: text separability *improves* with depth (level 7 has
more low-SD contexts than levels 3 and 5), because representatives of
deep, focused contexts characterise them better.

KNOWN DEVIATION (documented in EXPERIMENTS.md): on the synthetic corpus
this gradient inverts.  Our ontology's compositional term names -- which
pattern construction needs -- give every subtree paper a shared
vocabulary band with a shallow representative, so shallow contexts show
*smoothly spread* similarities (good SD) while tight deep contexts
cluster.  The bench therefore records the histograms and asserts only
that a depth gradient exists, flagging its direction in the output.
"""

from conftest import write_result

from repro.eval.experiments import SeparabilityExperiment

LEVELS = (3, 5, 7)


def low_sd_share(histogram, cut=15.0):
    return sum(percent for edge, percent in histogram if edge < cut)


def test_fig_5_5_text_separability_by_level(benchmark, pipeline, results_dir):
    paper_set = pipeline.experiment_paper_set("text")
    experiment = SeparabilityExperiment(paper_set, levels=LEVELS)

    def run():
        return experiment.run(pipeline.prestige("text", "text"))

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    from repro.eval.ascii_plot import ascii_histogram

    lines = [result.format_table(), "", "per-level %contexts with SD < 15:"]
    shares = {}
    for level in LEVELS:
        shares[level] = low_sd_share(result.histogram_by_level[level])
        lines.append(f"  level {level}: {shares[level]:.1f}%")
    for level in LEVELS:
        lines.append(f"\nlevel {level} SD histogram:")
        lines.append(ascii_histogram(result.histogram_by_level[level]))
    direction = (
        "paper-shaped (deep better)"
        if shares[LEVELS[-1]] > shares[LEVELS[0]]
        else "INVERTED vs paper (shallow better; see EXPERIMENTS.md)"
    )
    lines.append(f"gradient: {direction}")
    write_result(results_dir, "fig_5_5", "\n".join(lines))

    # A real depth gradient must exist in some direction.
    assert shares[LEVELS[0]] != shares[LEVELS[-1]]
    # And text scores must remain well-separated overall (mean SD far from
    # the degenerate 30).
    assert result.mean_sd() < 25.0
