"""Unit tests for the Porter stemmer against published example outputs.

The expected stems come from the examples in Porter's 1980 paper and the
reference implementation's vocabulary/output sample.
"""

import pytest

from repro.text.stem import PorterStemmer, stem


@pytest.fixture(scope="module")
def stemmer():
    return PorterStemmer()


class TestStep1:
    @pytest.mark.parametrize(
        "word,expected",
        [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
        ],
    )
    def test_step1a_plurals(self, stemmer, word, expected):
        assert stemmer.stem(word) == expected

    @pytest.mark.parametrize(
        "word,expected",
        [
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
        ],
    )
    def test_step1b_ed_ing(self, stemmer, word, expected):
        assert stemmer.stem(word) == expected

    @pytest.mark.parametrize(
        "word,expected",
        [
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
        ],
    )
    def test_step1b_cleanup(self, stemmer, word, expected):
        assert stemmer.stem(word) == expected

    @pytest.mark.parametrize(
        "word,expected", [("happy", "happi"), ("sky", "sky")]
    )
    def test_step1c_y_to_i(self, stemmer, word, expected):
        assert stemmer.stem(word) == expected


class TestLaterSteps:
    @pytest.mark.parametrize(
        "word,expected",
        [
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("hesitanci", "hesit"),
            ("digitizer", "digit"),
            ("conformabli", "conform"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
        ],
    )
    def test_step2(self, stemmer, word, expected):
        assert stemmer.stem(word) == expected

    @pytest.mark.parametrize(
        "word,expected",
        [
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
        ],
    )
    def test_step3(self, stemmer, word, expected):
        assert stemmer.stem(word) == expected

    @pytest.mark.parametrize(
        "word,expected",
        [
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
        ],
    )
    def test_step4(self, stemmer, word, expected):
        assert stemmer.stem(word) == expected

    @pytest.mark.parametrize(
        "word,expected",
        [
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ],
    )
    def test_step5(self, stemmer, word, expected):
        assert stemmer.stem(word) == expected


class TestGeneralBehaviour:
    def test_short_words_unchanged(self, stemmer):
        assert stemmer.stem("at") == "at"
        assert stemmer.stem("by") == "by"

    def test_non_alpha_unchanged(self, stemmer):
        assert stemmer.stem("p53") == "p53"
        assert stemmer.stem("brca1") == "brca1"

    def test_lowercases_input(self, stemmer):
        assert stemmer.stem("Relational") == "relat"

    def test_module_level_helper(self):
        assert stem("generalizations") == "gener"

    def test_biomedical_vocabulary(self, stemmer):
        # Words the synthetic corpus leans on heavily.
        assert stemmer.stem("binding") == "bind"
        assert stemmer.stem("transcription") == "transcript"
        assert stemmer.stem("regulation") == "regul"
        assert stemmer.stem("signaling") == "signal"

    def test_idempotent_on_sample(self, stemmer):
        for word in ["relational", "hopefulness", "motoring", "caresses", "happy"]:
            once = stemmer.stem(word)
            assert stemmer.stem(once) == stemmer.stem(once)
