"""Statistical utilities for the evaluation harness.

Rank correlations (used by the HITS-vs-PageRank ablation and any
score-function comparison) and bootstrap confidence intervals (so
precision curves can be reported with uncertainty, which the paper's
figures lack).
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np


def _aligned_arrays(
    scores_a: Mapping[str, float], scores_b: Mapping[str, float]
) -> Tuple[np.ndarray, np.ndarray]:
    keys = sorted(set(scores_a) & set(scores_b))
    a = np.array([scores_a[k] for k in keys], dtype=float)
    b = np.array([scores_b[k] for k in keys], dtype=float)
    return a, b


def _ranks(values: np.ndarray) -> np.ndarray:
    """Average ranks (ties share the mean of their rank range)."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty(len(values), dtype=float)
    i = 0
    while i < len(values):
        j = i
        while j + 1 < len(values) and values[order[j + 1]] == values[order[i]]:
            j += 1
        average_rank = (i + j) / 2.0
        for k in range(i, j + 1):
            ranks[order[k]] = average_rank
        i = j + 1
    return ranks


def spearman(
    scores_a: Mapping[str, float], scores_b: Mapping[str, float]
) -> Optional[float]:
    """Spearman rank correlation over the shared keys (None if degenerate).

    Uses average ranks for ties; returns None when fewer than two shared
    keys exist or either side is constant.
    """
    a, b = _aligned_arrays(scores_a, scores_b)
    if len(a) < 2:
        return None
    rank_a, rank_b = _ranks(a), _ranks(b)
    if rank_a.std() == 0.0 or rank_b.std() == 0.0:
        return None
    return float(np.corrcoef(rank_a, rank_b)[0, 1])


def kendall_tau(
    scores_a: Mapping[str, float], scores_b: Mapping[str, float]
) -> Optional[float]:
    """Kendall's tau-a over shared keys (None if degenerate).

    O(n^2) pair counting -- fine for per-context score maps (tens to a few
    hundred papers).
    """
    a, b = _aligned_arrays(scores_a, scores_b)
    n = len(a)
    if n < 2:
        return None
    concordant = 0
    discordant = 0
    for i in range(n):
        for j in range(i + 1, n):
            sign_a = np.sign(a[i] - a[j])
            sign_b = np.sign(b[i] - b[j])
            product = sign_a * sign_b
            if product > 0:
                concordant += 1
            elif product < 0:
                discordant += 1
    total_pairs = n * (n - 1) / 2
    if total_pairs == 0:
        return None
    return float((concordant - discordant) / total_pairs)


def bootstrap_mean_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> Optional[Tuple[float, float, float]]:
    """(mean, ci_low, ci_high) by percentile bootstrap; None for empty input.

    Deterministic for a fixed seed, so benches can assert on it.
    """
    if not values:
        return None
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if n_resamples < 1:
        raise ValueError(f"n_resamples must be >= 1, got {n_resamples}")
    data = np.asarray(list(values), dtype=float)
    rng = np.random.default_rng(seed)
    resample_means = np.array(
        [
            data[rng.integers(0, len(data), len(data))].mean()
            for _ in range(n_resamples)
        ]
    )
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(resample_means, [alpha, 1.0 - alpha])
    return float(data.mean()), float(low), float(high)
