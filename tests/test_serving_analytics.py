"""Query analytics, shadow scoring, and reload drift (`repro.serving.analytics`).

Three layers:

- ``QueryAnalytics`` folds finished telemetry records into a rolling
  window and reports volumes / zero-result rate / term and score
  distributions, both as a JSON snapshot and as scrape-time gauges;
- ``ShadowScorer`` samples live requests onto a worker thread and
  records rank agreement between the primary ranking and every other
  registered score function, without touching the hot path's caches;
- ``Pipeline.configure_drift`` pins probe-query rankings and gates
  ``refresh()`` on the churn of the candidate view against them.
"""

import queue

import pytest

from repro.core.scores import PrestigeScores
from repro.obs import configure_telemetry, get_registry, get_telemetry
from repro.obs.quality import DriftExceeded
from repro.pipeline import build_demo_pipeline
from repro.serving.analytics import QueryAnalytics, ShadowScorer

QUERY = "gene expression regulation"


class _Record:
    """Duck-typed stand-in for a finished telemetry QueryRecord."""

    def __init__(self, kind="search", query="", **attrs):
        self.kind = kind
        self.query = query
        self.attrs = attrs


@pytest.fixture(scope="module")
def pipeline():
    return build_demo_pipeline(seed=7, n_papers=120, n_terms=30)


@pytest.fixture
def fresh_pipeline():
    """Function-scoped: drift tests mutate the substrate store."""
    return build_demo_pipeline(seed=7, n_papers=120, n_terms=30)


def _invert_text_scores(pipeline, query, top_n=5):
    """Install perturbed text scores that demote the current top hits."""
    store = pipeline._store
    engine = pipeline.serving_view.engine("text", "text", "probe")
    top_ids = {hit.paper_id for hit in engine.search(query, limit=top_n)}
    old = store.scores["text/text"]
    perturbed = {
        ctx: {
            pid: (0.001 if pid in top_ids else value + 10.0)
            for pid, value in old.of(ctx).items()
        }
        for ctx in old.context_ids()
    }
    store.install_scores("text/text", PrestigeScores("text", perturbed))


class TestQueryAnalytics:
    def test_snapshot_aggregates_the_window(self):
        analytics = QueryAnalytics(window_s=60.0)
        analytics.observe(
            _Record("search", "gene expression", hits=7, top_score=0.9,
                    function="text")
        )
        analytics.observe(
            _Record("search", "gene therapy", hits=0, function="citation")
        )
        analytics.observe(_Record("explain", "dna", function="text"))
        snap = analytics.snapshot()
        assert snap["queries"] == 3
        assert snap["by_kind"] == {"search": 2, "explain": 1}
        assert snap["by_function"] == {"text": 2, "citation": 1}
        assert snap["counted_results"] == 2
        assert snap["zero_results"] == 1
        assert snap["zero_result_rate"] == 0.5
        assert snap["result_counts"]["0"] == 1
        assert snap["result_counts"]["6-10"] == 1
        assert {"term": "gene", "count": 2} in snap["top_terms"]
        assert snap["top_score"]["samples"] == 1
        assert snap["top_score"]["max"] == 0.9

    def test_zero_result_rate_none_without_counted_results(self):
        analytics = QueryAnalytics()
        analytics.observe(_Record("explain", "dna"))
        assert analytics.snapshot()["zero_result_rate"] is None

    def test_window_prunes_old_entries(self):
        analytics = QueryAnalytics(window_s=10.0)
        analytics.observe(_Record("search", "old", hits=1))
        stale_at = analytics._entries[0].ts + 11.0
        assert analytics.snapshot(now=stale_at)["queries"] == 0

    def test_bounded_event_buffer(self):
        analytics = QueryAnalytics(max_events=4)
        for index in range(10):
            analytics.observe(_Record("search", f"q{index}", hits=1))
        assert analytics.snapshot()["queries"] == 4

    def test_counters_and_histograms_recorded(self):
        analytics = QueryAnalytics()
        analytics.observe(_Record("search", "a", hits=0))
        analytics.observe(_Record("search", "b", hits=3, top_score=0.5))
        counters = get_registry().snapshot()["counters"]
        assert counters["search.analytics.queries"] == 2
        assert counters["search.analytics.zero_results"] == 1

    def test_export_gauges(self):
        analytics = QueryAnalytics()
        analytics.observe(_Record("search", "a", hits=0, function="text"))
        analytics.observe(
            _Record("search", "b", hits=2, function="Weird Fn!")
        )
        analytics.export_gauges()
        gauges = get_registry().snapshot()["gauges"]
        assert gauges["search.analytics.window_queries"] == 2
        assert gauges["search.analytics.zero_result_rate"] == 0.5
        assert gauges["search.analytics.text.queries"] == 1
        # Function names are sanitised into metric segments.
        assert gauges["search.analytics.weird_fn.queries"] == 1

    def test_zero_result_gauge_absent_without_counted(self):
        analytics = QueryAnalytics()
        analytics.observe(_Record("explain", "dna"))
        analytics.export_gauges()
        gauges = get_registry().snapshot()["gauges"]
        assert "search.analytics.zero_result_rate" not in gauges

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="window_s"):
            QueryAnalytics(window_s=0.0)
        with pytest.raises(ValueError, match="max_events"):
            QueryAnalytics(max_events=0)


class TestTelemetryListener:
    def test_listener_sees_finished_searches_including_cache_hits(
        self, pipeline
    ):
        configure_telemetry(enabled=True, sample_rate=0.0, seed=3)
        analytics = QueryAnalytics()
        get_telemetry().add_listener(analytics.observe)
        pipeline.search(QUERY, limit=5)
        pipeline.search(QUERY, limit=5)  # result-cache hit
        snap = analytics.snapshot()
        assert snap["queries"] == 2
        assert snap["counted_results"] == 2
        assert snap["zero_result_rate"] == 0.0

    def test_listener_exception_is_swallowed_and_counted(self, pipeline):
        configure_telemetry(enabled=True, sample_rate=0.0, seed=3)

        def bad_listener(record):
            raise RuntimeError("boom")

        get_telemetry().add_listener(bad_listener)
        pipeline.search(QUERY, limit=5)  # must not raise
        counters = get_registry().snapshot()["counters"]
        assert counters["telemetry.listener.errors"] >= 1

    def test_disabled_telemetry_never_calls_listeners(self, pipeline):
        calls = []
        get_telemetry().add_listener(lambda record: calls.append(record))
        pipeline.search(QUERY, limit=5)
        assert calls == []


class TestShadowScorer:
    def test_unknown_function_rejected(self, pipeline):
        with pytest.raises(ValueError, match="no-such-fn"):
            ShadowScorer(pipeline, ["no-such-fn"])

    def test_sample_rate_validated(self, pipeline):
        with pytest.raises(ValueError, match="sample_rate"):
            ShadowScorer(pipeline, ["citation"], sample_rate=1.5)

    def test_sampled_request_records_agreement(self, pipeline):
        scorer = ShadowScorer(
            pipeline, ["citation"], sample_rate=1.0, k=10, seed=5
        ).start()
        try:
            view = pipeline.serving_view
            hits = pipeline.search(QUERY, limit=10, use_cache=False)
            accepted = scorer.offer(
                query=QUERY, function="text", paper_set="text",
                strategy="probe", threshold=0.0,
                primary_ids=[hit.paper_id for hit in hits], view=view,
            )
            assert accepted
            assert scorer.drain(timeout_s=30.0)
        finally:
            scorer.stop()
        snap = scorer.snapshot()
        agreement = snap["agreement"]["citation"]
        assert agreement["samples"] == 1
        assert 0.0 <= agreement["mean_jaccard"] <= 1.0
        counters = get_registry().snapshot()["counters"]
        assert counters["search.shadow.sampled"] == 1
        assert counters["search.shadow.scored"] == 1
        histograms = get_registry().snapshot()["histograms"]
        assert "search.shadow.citation.jaccard" in histograms

    def test_primary_function_not_rescored_against_itself(self, pipeline):
        scorer = ShadowScorer(
            pipeline, ["text"], sample_rate=1.0, seed=5
        ).start()
        try:
            view = pipeline.serving_view
            hits = pipeline.search(QUERY, limit=10, use_cache=False)
            scorer.offer(
                query=QUERY, function="text", paper_set="text",
                strategy="probe", threshold=0.0,
                primary_ids=[hit.paper_id for hit in hits], view=view,
            )
            assert scorer.drain(timeout_s=30.0)
        finally:
            scorer.stop()
        counters = get_registry().snapshot()["counters"]
        assert counters.get("search.shadow.scored", 0) == 0

    def test_zero_sample_rate_never_enqueues(self, pipeline):
        scorer = ShadowScorer(pipeline, ["citation"], sample_rate=0.0, seed=5)
        view = pipeline.serving_view
        for _ in range(20):
            assert not scorer.offer(
                query=QUERY, function="text", paper_set="text",
                strategy="probe", threshold=0.0, primary_ids=[], view=view,
            )
        assert scorer.snapshot()["queued"] == 0

    def test_full_queue_drops_instead_of_blocking(self, pipeline):
        # Never started: the queue only fills.
        scorer = ShadowScorer(
            pipeline, ["citation"], sample_rate=1.0, queue_depth=2, seed=5
        )
        view = pipeline.serving_view
        offers = [
            scorer.offer(
                query=QUERY, function="text", paper_set="text",
                strategy="probe", threshold=0.0, primary_ids=["P1"],
                view=view,
            )
            for _ in range(4)
        ]
        assert offers == [True, True, False, False]
        counters = get_registry().snapshot()["counters"]
        assert counters["search.shadow.dropped"] == 2
        # Drain the unstarted queue so stop() has nothing to wait on.
        while True:
            try:
                scorer._queue.get_nowait()
            except queue.Empty:
                break


class TestReloadDrift:
    PROBES = [QUERY, "dna repair mechanism"]

    def test_configure_drift_validation(self, fresh_pipeline):
        with pytest.raises(ValueError, match="probe"):
            fresh_pipeline.configure_drift([])
        with pytest.raises(ValueError, match="unknown"):
            fresh_pipeline.configure_drift(self.PROBES, functions=["nope"])
        with pytest.raises(ValueError, match="k"):
            fresh_pipeline.configure_drift(self.PROBES, k=0)
        with pytest.raises(ValueError, match="max_drift"):
            fresh_pipeline.configure_drift(self.PROBES, max_drift=2.0)

    def test_configure_returns_zero_drift_self_report(self, fresh_pipeline):
        report = fresh_pipeline.configure_drift(self.PROBES)
        assert report.max_churn == 0.0
        assert fresh_pipeline.last_drift_report is report

    def test_identical_refresh_reports_zero_drift(self, fresh_pipeline):
        fresh_pipeline.configure_drift(self.PROBES, max_drift=0.2)
        fresh_pipeline.refresh(enforce_drift=True)
        assert fresh_pipeline.last_drift_report.max_churn == 0.0
        snapshot = get_registry().snapshot()
        assert snapshot["counters"]["serving.reload.drift.checks"] >= 1
        assert snapshot["gauges"]["serving.reload.drift.max_churn"] == 0.0

    def test_regression_is_refused_and_old_view_pinned(self, fresh_pipeline):
        fresh_pipeline.configure_drift(
            self.PROBES, functions=["text"], max_drift=0.2
        )
        view_before = fresh_pipeline.serving_view
        _invert_text_scores(fresh_pipeline, QUERY)
        with pytest.raises(DriftExceeded) as exc_info:
            fresh_pipeline.refresh(enforce_drift=True)
        assert exc_info.value.report.max_churn > 0.2
        # The hold pins the old view across automatic staleness refreshes.
        assert fresh_pipeline.serving_view is view_before
        counters = get_registry().snapshot()["counters"]
        assert counters["serving.reload.drift.refused"] >= 1

    def test_auto_refresh_honors_the_armed_gate(self, fresh_pipeline):
        fresh_pipeline.configure_drift(
            self.PROBES, functions=["text"], max_drift=0.2
        )
        view_before = fresh_pipeline.serving_view
        _invert_text_scores(fresh_pipeline, QUERY)
        # Property access (the auto-refresh path), not an explicit reload.
        assert fresh_pipeline.serving_view is view_before
        assert fresh_pipeline.last_drift_report.max_churn > 0.2

    def test_forced_refresh_swaps_and_rebaselines(self, fresh_pipeline):
        fresh_pipeline.configure_drift(
            self.PROBES, functions=["text"], max_drift=0.2
        )
        view_before = fresh_pipeline.serving_view
        _invert_text_scores(fresh_pipeline, QUERY)
        with pytest.raises(DriftExceeded):
            fresh_pipeline.refresh(enforce_drift=True)
        forced = fresh_pipeline.refresh(enforce_drift=False)
        assert forced is not view_before
        assert fresh_pipeline.serving_view is forced
        # The forced candidate became the new baseline: re-checking the
        # unchanged substrate is zero drift again.
        fresh_pipeline.refresh(enforce_drift=True)
        assert fresh_pipeline.last_drift_report.max_churn == 0.0

    def test_report_only_mode_swaps_but_records_drift(self, fresh_pipeline):
        fresh_pipeline.configure_drift(self.PROBES, functions=["text"])
        view_before = fresh_pipeline.serving_view
        _invert_text_scores(fresh_pipeline, QUERY)
        view = fresh_pipeline.refresh(enforce_drift=True)  # max_drift unset
        assert view is not view_before
        assert fresh_pipeline.last_drift_report.max_churn > 0.0

    def test_substrate_change_clears_the_hold(self, fresh_pipeline):
        fresh_pipeline.configure_drift(
            self.PROBES, functions=["text"], max_drift=0.2
        )
        _invert_text_scores(fresh_pipeline, QUERY)
        with pytest.raises(DriftExceeded):
            fresh_pipeline.refresh(enforce_drift=True)
        held = fresh_pipeline.serving_view
        # Another substrate mutation moves the revision past the hold;
        # this candidate drifts just as far, so the gate refuses again
        # (fresh evaluation, not a stale pin).
        _invert_text_scores(fresh_pipeline, "dna repair mechanism")
        assert fresh_pipeline.serving_view is held
        assert (
            get_registry().snapshot()["counters"][
                "serving.reload.drift.refused"
            ]
            >= 2
        )
