"""The serve layer: immutable-per-refresh :class:`ServingView` snapshots.

A view binds one substrate-store revision to the two serving caches --
memoised :class:`~repro.core.search.ContextSearchEngine` instances and a
bounded LRU :class:`SearchResultCache`.  The pipeline swaps the current
view atomically (one reference assignment) on
:meth:`~repro.pipeline.Pipeline.refresh`, so a request that grabbed a
view keeps serving from a self-consistent engine/cache pair even while a
replacement view is being installed: readers never observe a
half-invalidated cache.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.search import ContextSearchEngine, SearchHit, SELECTION_STRATEGIES
from repro.obs import get_registry
from repro.serving.substrate import SubstrateStore


class SearchResultCache:
    """Bounded, thread-safe LRU cache of merged search results.

    Serving-layer component: the pipeline keys it on the full query
    identity (query string, prestige function, paper set, selection
    strategy, limit, threshold), so two requests that could rank
    differently never share an entry.  Hits/misses/evictions are counted
    as ``search.cache.{hit,miss,evict}``.  The cache holds derived data
    only; each :class:`ServingView` owns a fresh one, so invalidation is
    simply view replacement.

    ``capacity=0`` disables caching entirely (every ``get`` misses
    silently, ``put`` is a no-op) -- the switch behind
    ``repro search --no-result-cache``.  Negative capacities are
    rejected.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple, List[SearchHit]]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._lookups = 0

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> Optional[float]:
        """Lifetime hit fraction of *this* cache (None before any lookup).

        Per-instance, unlike the process-wide ``search.cache.{hit,miss}``
        counters which survive view swaps -- this is the number the view
        exports as the ``search.cache.hit_rate`` gauge.
        """
        with self._lock:
            if not self._lookups:
                return None
            return self._hits / self._lookups

    def get(self, key: Tuple) -> Optional[List[SearchHit]]:
        if not self.enabled:
            return None
        registry = get_registry()
        with self._lock:
            self._lookups += 1
            entry = self._entries.get(key)
            if entry is None:
                registry.counter("search.cache.miss").inc()
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            registry.counter("search.cache.hit").inc()
            return list(entry)

    def put(self, key: Tuple, hits: Sequence[SearchHit]) -> None:
        if not self.enabled:
            return
        registry = get_registry()
        with self._lock:
            self._entries[key] = list(hits)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                registry.counter("search.cache.evict").inc()

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class ServingView:
    """One revision's worth of serving state: engines + result cache.

    Engines are memoised per (function, paper set, selection strategy):
    constructing one costs nothing, but a *warm* engine carries
    per-context caches worth keeping across queries -- the paper's
    pre-process-once/serve-many discipline.  A view never mutates its
    substrate bindings after creation; when the store's revision moves
    on, the pipeline builds a fresh view rather than patching this one.
    """

    def __init__(
        self,
        store: SubstrateStore,
        revision: int,
        w_prestige: float = 0.7,
        w_matching: float = 0.3,
        result_cache_size: int = 256,
    ) -> None:
        self._store = store
        self.revision = revision
        self.w_prestige = w_prestige
        self.w_matching = w_matching
        self.created_at = time.monotonic()
        self.result_cache = SearchResultCache(capacity=result_cache_size)
        self._engines: Dict[Tuple[str, str, str], ContextSearchEngine] = {}
        self._engines_lock = threading.Lock()

    def engine(
        self,
        function: str = "text",
        paper_set_name: str = "text",
        selection_strategy: str = "probe",
    ) -> ContextSearchEngine:
        """The memoised search engine for one (function, set, strategy).

        The ``representative`` strategy is wired to the store's vector
        store and representatives map automatically.
        """
        if selection_strategy not in SELECTION_STRATEGIES:
            raise ValueError(
                f"selection_strategy must be one of {SELECTION_STRATEGIES}, "
                f"got {selection_strategy!r}"
            )
        key = (function, paper_set_name, selection_strategy)
        with self._engines_lock:
            engine = self._engines.get(key)
            if engine is not None:
                return engine
        # Build outside the lock: prestige/paper-set computation can be
        # expensive and must not serialise unrelated engine lookups.
        store = self._store
        engine = ContextSearchEngine(
            store.ontology,
            store.paper_set(paper_set_name),
            store.prestige(function, paper_set_name),
            store.keyword_engine,
            w_prestige=self.w_prestige,
            w_matching=self.w_matching,
            selection_strategy=selection_strategy,
            vectors=(
                store.vectors if selection_strategy == "representative" else None
            ),
            representatives=(
                store.representatives
                if selection_strategy == "representative"
                else None
            ),
        )
        with self._engines_lock:
            return self._engines.setdefault(key, engine)

    def engine_count(self) -> int:
        with self._engines_lock:
            return len(self._engines)

    @property
    def age_seconds(self) -> float:
        """Seconds since this view was built (staleness indicator)."""
        return time.monotonic() - self.created_at

    def export_gauges(self) -> None:
        """Publish this view's point-in-time state as gauges.

        Run by the exposition endpoint's collector hook before every
        scrape (``serving.view.{revision,age_seconds,engines}``,
        ``search.cache.{hit_rate,size}``) -- gauges are last-write-wins,
        so only the current view should export.
        """
        registry = get_registry()
        registry.gauge("serving.view.revision").set(self.revision)
        registry.gauge("serving.view.age_seconds").set(self.age_seconds)
        registry.gauge("serving.view.engines").set(self.engine_count())
        registry.gauge("search.cache.size").set(len(self.result_cache))
        hit_rate = self.result_cache.hit_rate
        if hit_rate is not None:
            registry.gauge("search.cache.hit_rate").set(hit_rate)
        # Backend-aware: lazy index backends (ondisk) expose cache/mmap
        # stats; only the raw slot is inspected so a scrape never
        # triggers a substrate build.
        backend_stats = getattr(self._store._index, "backend_stats", None)
        if callable(backend_stats):
            for stat, value in backend_stats().items():
                registry.gauge(f"index.backend.{stat}").set(value)
