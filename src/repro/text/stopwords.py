"""English stopword list.

A moderately sized list in the spirit of the classic SMART/Glasgow lists,
trimmed to words that actually occur in scientific prose.  Kept as a frozen
set so callers can rely on it being immutable and hashable-membership fast.
"""

from __future__ import annotations

from typing import FrozenSet

STOPWORDS: FrozenSet[str] = frozenset(
    """
    a about above after again against all also although always am among an
    and any are aren't as at be because been before being below between both
    but by can cannot could couldn't did didn't do does doesn't doing don't
    down during each either few for from further had hadn't has hasn't have
    haven't having he her here hers herself him himself his how however i if
    in into is isn't it its itself just let's may me might more most mustn't
    my myself neither no nor not of off on once only or other ought our ours
    ourselves out over own per same shan't she should shouldn't since so some
    such than that that's the their theirs them themselves then there these
    they they're this those through thus to too under until up upon us very
    was wasn't we were weren't what when where whether which while who whom
    why will with within without won't would wouldn't yet you your yours
    yourself yourselves
    """.split()
)


def is_stopword(token: str) -> bool:
    """Return True if ``token`` (lowercased) is a stopword.

    >>> is_stopword("The")
    True
    >>> is_stopword("kinase")
    False
    """
    return token.lower() in STOPWORDS
