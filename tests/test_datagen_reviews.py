"""Unit tests for review-paper generation (the citation-noise mechanism)."""

import pytest

from repro.citations.graph import CitationGraph
from repro.datagen.corpus_gen import CorpusGenerator
from repro.datagen.ontology_gen import OntologyGenerator


@pytest.fixture(scope="module")
def dataset():
    generator = CorpusGenerator(
        n_papers=500,
        ontology_generator=OntologyGenerator(n_terms=80, max_depth=6),
        review_fraction=0.10,
    )
    return generator.generate(seed=31)


class TestReviewGeneration:
    def test_reviews_exist_at_expected_rate(self, dataset):
        rate = len(dataset.review_paper_ids) / len(dataset.corpus)
        assert 0.05 < rate < 0.16  # ~10% requested

    def test_reviews_anchored_at_broad_terms(self, dataset):
        for paper_id in dataset.review_paper_ids:
            primary = dataset.primary_term_of[paper_id]
            assert dataset.ontology.level(primary) <= 3

    def test_reviews_attract_more_citations(self, dataset):
        """The citation-pull boost must be visible in mean in-degree."""
        graph = CitationGraph.from_corpus(dataset.corpus)
        reviews = dataset.review_paper_ids
        review_degrees = [graph.in_degree(pid) for pid in reviews]
        regular_degrees = [
            graph.in_degree(p.paper_id)
            for p in dataset.corpus
            if p.paper_id not in reviews
        ]
        assert review_degrees and regular_degrees
        mean_review = sum(review_degrees) / len(review_degrees)
        mean_regular = sum(regular_degrees) / len(regular_degrees)
        assert mean_review > 1.5 * mean_regular

    def test_reviews_never_training_papers(self, dataset):
        training_ids = {
            pid for papers in dataset.training_papers.values() for pid in papers
        }
        assert not training_ids & dataset.review_paper_ids

    def test_reviews_have_diffuse_vocabulary(self, dataset):
        """A review's text draws on several descendant topics' jargon."""
        from repro.text.tokenize import tokenize

        diffuse = 0
        checked = 0
        for paper_id in list(dataset.review_paper_ids)[:20]:
            paper = dataset.corpus.paper(paper_id)
            primary = dataset.primary_term_of[paper_id]
            words = set(tokenize(paper.body))
            descendant_topics_hit = sum(
                1
                for descendant in dataset.ontology.descendants(primary)
                if words & set(dataset.topics.jargon_of(descendant))
            )
            checked += 1
            if descendant_topics_hit >= 2:
                diffuse += 1
        assert checked > 0
        assert diffuse / checked > 0.5

    def test_zero_review_fraction(self):
        generator = CorpusGenerator(
            n_papers=60,
            ontology_generator=OntologyGenerator(n_terms=20),
            review_fraction=0.0,
        )
        dataset = generator.generate(seed=1)
        assert dataset.review_paper_ids == frozenset()
