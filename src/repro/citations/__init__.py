"""Citation-analysis substrate.

- :mod:`repro.citations.graph` -- the :class:`CitationGraph` and
  per-context subgraph extraction.
- :mod:`repro.citations.pagerank` -- the paper's PageRank variant
  (``P_{i+1} = (1-d) M^T P_i + E`` with teleport options E1/E2).
- :mod:`repro.citations.hits` -- Kleinberg's HITS (authorities/hubs),
  used by the correlation ablation.
- :mod:`repro.citations.coupling` -- bibliographic coupling (Kessler 1963)
  and co-citation (Small 1973) similarities for the text-based score's
  reference facet.
"""

from repro.citations.coupling import (
    bibliographic_coupling,
    citation_similarity,
    cocitation,
)
from repro.citations.graph import CitationGraph
from repro.citations.hits import HitsResult, hits_scores
from repro.citations.pagerank import PageRankResult, TeleportKind, pagerank

__all__ = [
    "CitationGraph",
    "pagerank",
    "PageRankResult",
    "TeleportKind",
    "hits_scores",
    "HitsResult",
    "bibliographic_coupling",
    "cocitation",
    "citation_similarity",
]
