"""Word and sentence tokenisation.

The corpus is plain ASCII-ish scientific text (titles, abstracts, bodies,
index terms), so a compact regular-expression tokeniser is sufficient and
keeps the whole pipeline dependency-free.  Tokens keep internal hyphens and
apostrophes ("wild-type", "crick's") because biomedical vocabulary leans on
hyphenated compounds; gene-style alphanumerics ("p53", "brca1") survive
intact.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator, List, Sequence, Tuple

_WORD_RE = re.compile(r"[A-Za-z0-9]+(?:[-'][A-Za-z0-9]+)*")

_SENTENCE_RE = re.compile(
    r"""
    [^.!?]+            # sentence body: anything that is not a terminator
    (?:[.!?]+|\Z)      # one or more terminators, or end of text
    """,
    re.VERBOSE,
)


def tokenize(text: str, lowercase: bool = True) -> List[str]:
    """Split ``text`` into word tokens.

    >>> tokenize("DNA-repair in p53 knock-out mice.")
    ['dna-repair', 'in', 'p53', 'knock-out', 'mice']
    """
    if not text:
        return []
    tokens = _WORD_RE.findall(text)
    if lowercase:
        tokens = [token.lower() for token in tokens]
    return tokens


def sentences(text: str) -> List[str]:
    """Split ``text`` into sentences on ``.``, ``!`` and ``?`` boundaries.

    The splitter is intentionally simple: abbreviations are rare in the
    synthetic corpus, and pattern mining only needs *local* word windows, so
    occasional over-splitting is harmless.

    >>> sentences("First point. Second point!  Third?")
    ['First point.', 'Second point!', 'Third?']
    """
    if not text:
        return []
    found = [match.group().strip() for match in _SENTENCE_RE.finditer(text)]
    return [sentence for sentence in found if sentence]


def ngrams(tokens: Sequence[str], n: int) -> List[Tuple[str, ...]]:
    """Return all contiguous ``n``-grams of ``tokens``.

    >>> ngrams(["a", "b", "c"], 2)
    [('a', 'b'), ('b', 'c')]
    """
    if n <= 0:
        raise ValueError(f"n-gram size must be positive, got {n}")
    if len(tokens) < n:
        return []
    return [tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1)]


def sliding_windows(
    tokens: Sequence[str], size: int, step: int = 1
) -> Iterator[Tuple[int, Sequence[str]]]:
    """Yield ``(start, window)`` pairs of length-``size`` windows.

    Used by pattern matching to scan paper sections with their left/right
    surround.  The final shorter window is *not* emitted; callers that need
    tail coverage should pad or lower ``size``.
    """
    if size <= 0:
        raise ValueError(f"window size must be positive, got {size}")
    if step <= 0:
        raise ValueError(f"window step must be positive, got {step}")
    for start in range(0, max(len(tokens) - size + 1, 0), step):
        yield start, tokens[start : start + size]


def token_counts(tokens: Iterable[str]) -> dict:
    """Count occurrences of each token (a tiny convenience wrapper)."""
    counts: dict = {}
    for token in tokens:
        counts[token] = counts.get(token, 0) + 1
    return counts
