"""ASCII rendering of saved trace / metrics dumps (``repro obs report``).

Consumes the artefacts the CLI writes -- ``--trace-out`` JSON-lines span
trees and ``--metrics-out`` registry snapshots -- and renders the summary
tables a human reads after a run.  Pure functions over plain dicts, so
the renderer works on dumps from any process (or any PR ago).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional


def load_metrics(path) -> Dict[str, Any]:
    """Read a ``--metrics-out`` dump; returns the snapshot dict."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    # The CLI wraps the snapshot under "metrics"; accept both shapes.
    return payload.get("metrics", payload)


def _format_value(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def render_metrics(snapshot: Dict[str, Any]) -> str:
    """Counters, gauges, and histogram summaries as aligned tables."""
    lines: List[str] = []
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    if counters:
        lines.append("counters")
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {counters[name]}")
    if gauges:
        if lines:
            lines.append("")
        lines.append("gauges")
        width = max(len(name) for name in gauges)
        for name in sorted(gauges):
            lines.append(f"  {name:<{width}}  {_format_value(gauges[name])}")
    if histograms:
        if lines:
            lines.append("")
        lines.append("histograms")
        width = max(len(name) for name in histograms)
        header = (
            f"  {'name':<{width}}  {'count':>7}  {'mean':>10}  {'p50':>10}  "
            f"{'p95':>10}  {'p99':>10}  {'max':>10}"
        )
        lines.append(header)
        for name in sorted(histograms):
            summary = histograms[name]
            lines.append(
                f"  {name:<{width}}  {summary.get('count', 0):>7}  "
                f"{_format_value(summary.get('mean')):>10}  "
                f"{_format_value(summary.get('p50')):>10}  "
                f"{_format_value(summary.get('p95')):>10}  "
                f"{_format_value(summary.get('p99')):>10}  "
                f"{_format_value(summary.get('max')):>10}"
            )
    return "\n".join(lines) if lines else "(no metrics recorded)"


def _render_span(
    node: Dict[str, Any], prefix: str, is_last: bool, lines: List[str]
) -> None:
    connector = "`- " if is_last else "|- "
    attrs = node.get("attrs") or {}
    attr_text = "".join(f"  {key}={value}" for key, value in attrs.items())
    lines.append(
        f"{prefix}{connector}{node['name']}  "
        f"{node.get('duration_ms', 0.0):.3f}ms{attr_text}"
    )
    children = node.get("children", ())
    child_prefix = prefix + ("   " if is_last else "|  ")
    for i, child in enumerate(children):
        _render_span(child, child_prefix, i == len(children) - 1, lines)


def render_trace(roots: List[Dict[str, Any]]) -> str:
    """The span forest as an indented ASCII tree, one line per span."""
    if not roots:
        return "(no spans recorded)"
    lines: List[str] = []
    for root in roots:
        attrs = root.get("attrs") or {}
        attr_text = "".join(f"  {key}={value}" for key, value in attrs.items())
        lines.append(
            f"{root['name']}  {root.get('duration_ms', 0.0):.3f}ms{attr_text}"
        )
        children = root.get("children", ())
        for i, child in enumerate(children):
            _render_span(child, "", i == len(children) - 1, lines)
    return "\n".join(lines)


def render_report(
    trace_path=None, metrics_path=None
) -> str:
    """The full ``repro obs report`` output for the given dump files."""
    from repro.obs.trace import read_trace_jsonl

    sections: List[str] = []
    if trace_path is not None:
        roots = read_trace_jsonl(trace_path)
        n_spans = _count_spans(roots)
        sections.append(
            f"== trace: {trace_path} ({len(roots)} root spans, "
            f"{n_spans} total) ==\n" + render_trace(roots)
        )
    if metrics_path is not None:
        snapshot = load_metrics(metrics_path)
        sections.append(
            f"== metrics: {metrics_path} ==\n" + render_metrics(snapshot)
        )
    if not sections:
        return "nothing to report (pass --trace and/or --metrics)"
    return "\n\n".join(sections)


def _count_spans(roots: List[Dict[str, Any]]) -> int:
    total = 0
    stack = list(roots)
    while stack:
        node = stack.pop()
        total += 1
        stack.extend(node.get("children", ()))
    return total
