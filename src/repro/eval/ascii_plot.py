"""Plain-text chart rendering for benchmark outputs.

The benchmark harness regenerates the paper's *figures*; these helpers
render them as terminal-friendly charts so ``benchmarks/results/*.txt``
reads like figures rather than bare tables.  No plotting dependency --
just aligned Unicode bars and dot grids.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

_BAR = "█"
_HALF = "▌"
_MARKERS = "ox+*#@"


def ascii_bar_chart(
    values: Mapping[str, float],
    width: int = 40,
    max_value: Optional[float] = None,
    value_format: str = "{:.3f}",
) -> str:
    """Horizontal bar chart, one row per (label, value).

    >>> print(ascii_bar_chart({"a": 1.0, "b": 0.5}, width=4))
    a  ████  1.000
    b  ██    0.500
    """
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    if not values:
        return "(no data)"
    top = max_value if max_value is not None else max(values.values())
    if top <= 0:
        top = 1.0
    label_width = max(len(str(label)) for label in values)
    lines = []
    for label, value in values.items():
        filled = value / top * width
        bar = _BAR * int(filled)
        if filled - int(filled) >= 0.5:
            bar += _HALF
        bar = bar.ljust(width)
        lines.append(
            f"{str(label):<{label_width}}  {bar}  {value_format.format(value)}"
        )
    return "\n".join(lines)


def ascii_line_chart(
    series: Mapping[str, Sequence[Optional[float]]],
    x_labels: Sequence[str],
    height: int = 10,
    y_max: Optional[float] = None,
    y_min: float = 0.0,
) -> str:
    """Multi-series dot chart over a shared x axis.

    Each series gets a marker (legend below the chart); None values leave
    gaps.  Columns align under their x labels.
    """
    if height < 2:
        raise ValueError(f"height must be >= 2, got {height}")
    names = list(series)
    if not names or not x_labels:
        return "(no data)"
    for name in names:
        if len(series[name]) != len(x_labels):
            raise ValueError(
                f"series {name!r} has {len(series[name])} points for "
                f"{len(x_labels)} x labels"
            )
    present = [
        v for name in names for v in series[name] if v is not None
    ]
    if not present:
        return "(no data)"
    top = y_max if y_max is not None else max(present)
    if top <= y_min:
        top = y_min + 1.0
    column_width = max(max(len(label) for label in x_labels) + 1, 6)

    grid: List[List[str]] = [
        [" "] * (len(x_labels) * column_width) for _ in range(height)
    ]
    for series_index, name in enumerate(names):
        marker = _MARKERS[series_index % len(_MARKERS)]
        for x, value in enumerate(series[name]):
            if value is None:
                continue
            fraction = (value - y_min) / (top - y_min)
            fraction = min(max(fraction, 0.0), 1.0)
            row = height - 1 - int(round(fraction * (height - 1)))
            column = x * column_width + column_width // 2
            # Co-located points show the later series' marker plus '&'.
            grid[row][column] = (
                "&" if grid[row][column] != " " else marker
            )
    axis_width = 7
    lines = []
    for row_index, row in enumerate(grid):
        fraction = 1.0 - row_index / (height - 1)
        y_value = y_min + fraction * (top - y_min)
        prefix = f"{y_value:>{axis_width - 1}.2f}|"
        lines.append(prefix + "".join(row).rstrip())
    x_axis = " " * axis_width + "".join(
        label.center(column_width) for label in x_labels
    )
    lines.append(" " * (axis_width - 1) + "+" + "-" * (len(x_labels) * column_width))
    lines.append(x_axis.rstrip())
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}" for i, name in enumerate(names)
    )
    lines.append(f"{'':>{axis_width}}{legend}  (&=overlap)")
    return "\n".join(lines)


def ascii_histogram(
    bins: Sequence[Tuple[float, float]],
    width: int = 40,
    bin_format: str = "{:>4.0f}",
) -> str:
    """Render a (bin_edge, percent) series -- the shape of figs 5.4-5.7."""
    values: Dict[str, float] = {
        bin_format.format(edge): percent for edge, percent in bins
    }
    return ascii_bar_chart(values, width=width, value_format="{:5.1f}%")
