"""Context paper set construction (the two builders of section 4).

**Text-based context paper set** -- papers are assigned to a context by
text similarity to the context's *representative paper*.  Only contexts
with at least one training (annotation-evidence) paper get a
representative, mirroring the 5,632-context limitation in the paper.

**Pattern-based context paper set** -- the *simplified* pattern technique
of section 4: patterns are built without extended joins, matching
considers only middle tuples, descendant contexts' papers roll up into
ancestors, and a context with zero papers inherits its closest ancestor's
paper set with the RateOfDecay informativeness discount applied to its
scores.
"""

from __future__ import annotations

import time
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.context import Context, ContextPaperSet
from repro.core.patterns import (
    AnalyzedPaperCache,
    PatternSet,
    PatternSetBuilder,
    find_occurrences,
)
from repro.core.representative import select_representative
from repro.core.vectors import PaperVectorStore
from repro.corpus.corpus import Corpus
from repro.index.backends.base import SearchBackend
from repro.obs import get_logger, get_registry, span
from repro.ontology.ontology import Ontology

logger = get_logger(__name__)


class TextContextAssigner:
    """Builds the text-based context paper set.

    Parameters
    ----------
    similarity_threshold:
        Minimum whole-paper cosine similarity to the representative for a
        paper to join the context.
    candidate_terms:
        Candidate pruning width: papers are only scored if they share one
        of the representative vector's top-``candidate_terms`` terms
        (exact for any threshold > 0 given TF-IDF weighting of short
        queries; keeps the builder linear instead of contexts x corpus).
    """

    def __init__(
        self,
        corpus: Corpus,
        ontology: Ontology,
        vectors: PaperVectorStore,
        index: SearchBackend,
        similarity_threshold: float = 0.18,
        candidate_terms: int = 30,
    ) -> None:
        self.corpus = corpus
        self.ontology = ontology
        self.vectors = vectors
        self.index = index
        self.similarity_threshold = similarity_threshold
        self.candidate_terms = candidate_terms
        #: Representative paper chosen per context, populated by build().
        self.representatives: Dict[str, str] = {}

    def build(self, training_papers: Mapping[str, Sequence[str]]) -> ContextPaperSet:
        """Assign papers to every context that has training evidence."""
        started = time.perf_counter()
        registry = get_registry()
        contexts: List[Context] = []
        self.representatives = {}
        with span(
            "assignment.text.build", threshold=self.similarity_threshold
        ) as trace, registry.timer("assignment.text.seconds"):
            for term_id in self.ontology.term_ids():
                training = [
                    pid
                    for pid in training_papers.get(term_id, ())
                    if pid in self.corpus
                ]
                if not training:
                    continue
                representative = select_representative(self.vectors, training)
                if representative is None:
                    continue
                self.representatives[term_id] = representative
                members = self._assign_by_similarity(representative, training)
                contexts.append(
                    Context(
                        term_id=term_id,
                        paper_ids=tuple(members),
                        training_paper_ids=tuple(training),
                    )
                )
            papers_assigned = sum(len(c.paper_ids) for c in contexts)
            trace.set(contexts=len(contexts), papers_assigned=papers_assigned)
        registry.counter("assignment.text.contexts_built").inc(len(contexts))
        registry.counter("assignment.text.papers_assigned").inc(papers_assigned)
        logger.info(
            "text context paper set built",
            contexts=len(contexts),
            papers_assigned=papers_assigned,
            seconds=round(time.perf_counter() - started, 2),
            threshold=self.similarity_threshold,
        )
        return ContextPaperSet(self.ontology, contexts)

    def _assign_by_similarity(
        self, representative: str, training: Sequence[str]
    ) -> List[str]:
        """Papers whose similarity to the representative clears the bar."""
        rep_vector = self.vectors.full_vector(representative)
        candidates: Set[str] = set(training)
        candidates.add(representative)
        # Rank candidate terms by weight with *term string* tie-breaking:
        # integer term ids depend on vocabulary fit order, which differs
        # between a model fitted from scratch and one reached through
        # incremental corpus deltas, while the strings do not.
        vocabulary = self.vectors.full_model.vocabulary
        ranked = sorted(
            (
                (weight, vocabulary.term_of(term_id))
                for term_id, weight in rep_vector.weights.items()
            ),
            key=lambda item: (-item[0], item[1]),
        )
        for _weight, term in ranked[: self.candidate_terms]:
            candidates.update(self.index.papers_containing(term))
        members = []
        for paper_id in sorted(candidates):
            if paper_id in training or paper_id == representative:
                members.append(paper_id)
                continue
            similarity = self.vectors.full_vector(paper_id).cosine(rep_vector)
            if similarity >= self.similarity_threshold:
                members.append(paper_id)
        return list(dict.fromkeys(members))


class PatternContextAssigner:
    """Builds the (simplified) pattern-based context paper set."""

    def __init__(
        self,
        corpus: Corpus,
        ontology: Ontology,
        index: SearchBackend,
        token_cache: Optional[AnalyzedPaperCache] = None,
        pattern_builder: Optional[PatternSetBuilder] = None,
        max_middle_coverage: float = 0.08,
    ) -> None:
        #: Middles occurring in more than this fraction of the corpus are
        #: too unselective to define context membership ("process" alone
        #: must not pull every paper into a context).  Their patterns still
        #: contribute to *scores* -- near-nothing, via (1/coverage)^t --
        #: but they do not decide membership.
        self.max_middle_coverage = max_middle_coverage
        self.corpus = corpus
        self.ontology = ontology
        self.index = index
        self.tokens = (
            token_cache
            if token_cache is not None
            else AnalyzedPaperCache(corpus, index.analyzer)
        )
        # Simplified variant: no extended patterns (section 4).
        self.pattern_builder = (
            pattern_builder
            if pattern_builder is not None
            else PatternSetBuilder(
                ontology,
                corpus,
                index,
                token_cache=self.tokens,
                build_extended=False,
            )
        )
        #: PatternSet per context, populated by build() (reused by the
        #: pattern prestige function so patterns are built exactly once).
        self.pattern_sets: Dict[str, PatternSet] = {}

    def build(self, training_papers: Mapping[str, Sequence[str]]) -> ContextPaperSet:
        """Match, roll up descendants, and apply ancestor fallback."""
        started = time.perf_counter()
        registry = get_registry()
        with span("assignment.pattern.build") as trace, registry.timer(
            "assignment.pattern.seconds"
        ):
            own_matches: Dict[str, Set[str]] = {}
            training_clean: Dict[str, List[str]] = {}
            self.pattern_sets = {}
            with span("assignment.pattern.match") as match_trace:
                for term_id in self.ontology.term_ids():
                    training = [
                        pid
                        for pid in training_papers.get(term_id, ())
                        if pid in self.corpus
                    ]
                    training_clean[term_id] = training
                    pattern_set = self.pattern_builder.build(term_id, training)
                    self.pattern_sets[term_id] = pattern_set
                    own_matches[term_id] = self._match_corpus(pattern_set)
                matched_total = sum(len(m) for m in own_matches.values())
                match_trace.set(papers_matched=matched_total)
            registry.counter("assignment.pattern.papers_matched").inc(
                matched_total
            )

            # Descendant roll-up: a context's papers include its subtree's.
            rolled: Dict[str, Set[str]] = {}
            for term_id in self.ontology.term_ids():
                papers = set(own_matches[term_id])
                for descendant in self.ontology.descendants(term_id):
                    papers.update(own_matches[descendant])
                rolled[term_id] = papers

            contexts: List[Context] = []
            for term_id in self.ontology.term_ids():
                papers = rolled[term_id]
                inherited_from: Optional[str] = None
                decay = 1.0
                if not papers:
                    ancestor = self._closest_nonempty_ancestor(term_id, rolled)
                    if ancestor is not None:
                        papers = rolled[ancestor]
                        inherited_from = ancestor
                        decay = self.ontology.rate_of_decay(ancestor, term_id)
                if not papers:
                    continue
                contexts.append(
                    Context(
                        term_id=term_id,
                        paper_ids=tuple(sorted(papers)),
                        training_paper_ids=tuple(training_clean[term_id]),
                        inherited_from=inherited_from,
                        decay=decay,
                    )
                )
            inherited = sum(1 for c in contexts if c.inherited_from is not None)
            papers_assigned = sum(len(c.paper_ids) for c in contexts)
            trace.set(
                contexts=len(contexts),
                inherited=inherited,
                papers_assigned=papers_assigned,
            )
        registry.counter("assignment.pattern.contexts_built").inc(len(contexts))
        registry.counter("assignment.pattern.contexts_inherited").inc(inherited)
        registry.counter("assignment.pattern.papers_assigned").inc(papers_assigned)
        logger.info(
            "pattern context paper set built",
            contexts=len(contexts),
            inherited=inherited,
            papers_assigned=papers_assigned,
            seconds=round(time.perf_counter() - started, 2),
        )
        return ContextPaperSet(self.ontology, contexts)

    # -- matching ------------------------------------------------------------------

    def _match_corpus(self, pattern_set: PatternSet) -> Set[str]:
        """Papers containing any pattern middle tuple (contiguously).

        Candidates come from conjunctive index lookups per middle, then
        each candidate is verified against its analysed token stream, so
        the result is exact phrase matching at index-lookup cost.
        """
        matched: Set[str] = set()
        n_papers = max(self.index.n_papers, 1)
        max_candidates = self.max_middle_coverage * n_papers
        for middle in pattern_set.middles():
            if not middle:
                continue
            candidates = self.pattern_builder.papers_containing_all(middle)
            if len(candidates) > max_candidates:
                continue
            for paper_id in candidates - matched:
                if len(middle) == 1:
                    matched.add(paper_id)
                    continue
                if find_occurrences(self.tokens.all_tokens(paper_id), middle):
                    matched.add(paper_id)
        return matched

    def _closest_nonempty_ancestor(
        self, term_id: str, rolled: Mapping[str, Set[str]]
    ) -> Optional[str]:
        """Nearest ancestor (by level, deepest first) with papers."""
        ancestors = sorted(
            self.ontology.ancestors(term_id),
            key=lambda tid: (-self.ontology.level(tid), tid),
        )
        for ancestor in ancestors:
            if rolled.get(ancestor):
                return ancestor
        return None
