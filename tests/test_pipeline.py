"""Integration tests for the end-to-end pipeline."""

import pytest

from repro.pipeline import Pipeline, build_demo_pipeline


@pytest.fixture(scope="module")
def pipeline(small_dataset):
    return Pipeline.from_dataset(small_dataset, min_context_size=3)


class TestArtifacts:
    def test_index_covers_corpus(self, pipeline):
        assert pipeline.index.n_papers == len(pipeline.corpus)

    def test_text_paper_set_built(self, pipeline):
        paper_set = pipeline.text_paper_set
        assert len(paper_set) > 0
        for context in paper_set:
            assert context.training_paper_ids

    def test_pattern_paper_set_built(self, pipeline):
        paper_set = pipeline.pattern_paper_set
        assert len(paper_set) > 0

    def test_representatives_are_training_papers(self, pipeline):
        for term_id, rep in pipeline.representatives.items():
            context = pipeline.text_paper_set.context(term_id)
            assert rep in context.training_paper_ids

    def test_artifacts_memoised(self, pipeline):
        assert pipeline.text_paper_set is pipeline.text_paper_set
        assert pipeline.index is pipeline.index
        assert pipeline.prestige("text", "text") is pipeline.prestige("text", "text")

    def test_unknown_prestige_function_rejected(self, pipeline):
        with pytest.raises(ValueError, match="unknown prestige"):
            pipeline.prestige("bogus")


class TestPrestigeScores:
    @pytest.mark.parametrize("function", ["citation", "text", "pattern"])
    def test_scores_in_unit_interval(self, pipeline, function):
        paper_set_name = "pattern" if function == "pattern" else "text"
        scores = pipeline.prestige(function, paper_set_name)
        assert len(scores) > 0
        for context_id in scores.context_ids():
            for value in scores.of(context_id).values():
                assert 0.0 <= value <= 1.0

    def test_scores_cover_context_papers(self, pipeline):
        scores = pipeline.prestige("text", "text")
        for context in pipeline.text_paper_set:
            if context.term_id in scores:
                context_scores = scores.of(context.term_id)
                for paper_id in context.paper_ids:
                    assert paper_id in context_scores


class TestSearch:
    def test_search_returns_hits_for_topical_query(self, pipeline, small_dataset):
        # Build a query from a mid-level term's jargon: guaranteed topical.
        ontology = small_dataset.ontology
        term_id = next(
            tid
            for tid in ontology.term_ids()
            if ontology.level(tid) >= 2
            and small_dataset.training_papers.get(tid)
        )
        jargon = small_dataset.topics.jargon_of(term_id)
        query = " ".join(jargon[:2])
        hits = pipeline.search(query, limit=10)
        assert hits, f"no hits for {query!r}"
        for hit in hits:
            assert 0.0 <= hit.relevancy <= 1.0

    def test_experiment_paper_set_filters(self, pipeline):
        full = pipeline.text_paper_set
        view = pipeline.experiment_paper_set("text")
        assert len(view) <= len(full)
        for context in view:
            assert context.size >= 3


class TestBuildDemoPipeline:
    def test_deterministic(self):
        a = build_demo_pipeline(seed=4, n_papers=80, n_terms=25)
        b = build_demo_pipeline(seed=4, n_papers=80, n_terms=25)
        assert [p.paper_id for p in a.corpus] == [p.paper_id for p in b.corpus]
        assert a.corpus.paper("P000010") == b.corpus.paper("P000010")

    def test_search_smoke(self):
        pipeline = build_demo_pipeline(seed=4, n_papers=80, n_terms=25)
        # Whatever the query, the call path must not blow up.
        pipeline.search("binding activity", limit=5)


class TestFromDirectory:
    """Failure paths of the standard data-directory layout."""

    def _write_valid(self, directory, dataset):
        import json

        from repro.corpus import write_corpus_jsonl
        from repro.ontology import write_obo

        write_corpus_jsonl(dataset.corpus, directory / "corpus.jsonl")
        write_obo(dataset.ontology, directory / "ontology.obo")
        with open(directory / "training.json", "w", encoding="utf-8") as handle:
            json.dump(dataset.training_papers, handle)

    @pytest.mark.parametrize(
        "missing", ["corpus.jsonl", "ontology.obo", "training.json"]
    )
    def test_missing_file_named_in_error(self, small_dataset, tmp_path, missing):
        self._write_valid(tmp_path, small_dataset)
        (tmp_path / missing).unlink()
        with pytest.raises(FileNotFoundError, match=missing):
            Pipeline.from_directory(tmp_path)

    def test_corrupt_training_json_names_path(self, small_dataset, tmp_path):
        self._write_valid(tmp_path, small_dataset)
        (tmp_path / "training.json").write_text("{not json", encoding="utf-8")
        with pytest.raises(ValueError, match="corrupt JSON") as excinfo:
            Pipeline.from_directory(tmp_path)
        assert str(tmp_path / "training.json") in str(excinfo.value)

    def test_round_trip_matches_in_memory(self, small_dataset, tmp_path):
        self._write_valid(tmp_path, small_dataset)
        loaded = Pipeline.from_directory(tmp_path)
        assert loaded.corpus.paper_ids() == small_dataset.corpus.paper_ids()
        assert len(loaded.ontology) == len(small_dataset.ontology)
        assert loaded.training_papers == {
            k: list(v) for k, v in small_dataset.training_papers.items()
        }


class TestLoadPrecomputedParsing:
    def test_function_name_with_underscore(self, small_dataset, tmp_path):
        """Regression: scores_<function>_<set> where <function> itself
        contains an underscore used to be skipped silently."""
        from repro.core.io import write_prestige_scores
        from repro.core.scores import PrestigeScores

        scores = PrestigeScores("citation_xctx", {"T:1": {"P:1": 0.5}})
        write_prestige_scores(scores, tmp_path / "scores_citation_xctx_text.json")
        pipeline = Pipeline.from_dataset(small_dataset)
        assert pipeline.load_precomputed(tmp_path) == 1
        assert "citation_xctx/text" in pipeline._scores
        restored = pipeline._scores["citation_xctx/text"]
        assert restored.function_name == "citation_xctx"
        assert restored.score("T:1", "P:1") == pytest.approx(0.5)
