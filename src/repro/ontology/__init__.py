"""Ontology substrate: a Gene-Ontology-like DAG of terms.

Contexts in the paper are GO terms; the system needs the DAG structure
(parents/children), term *levels* (root = level 1, as in figure 5.3's
caption), descendant counts for information content ``I(C) = log(1/p(C))``
(Resnik, paper reference [13]), and the term-name words that seed
pattern construction.

- :mod:`repro.ontology.term` -- the :class:`Term` record.
- :mod:`repro.ontology.ontology` -- the :class:`Ontology` DAG.
- :mod:`repro.ontology.obo` -- a reader/writer for the OBO 1.2 subset
  needed to load the real Gene Ontology.
"""

from repro.ontology.obo import read_obo, write_obo
from repro.ontology.ontology import Ontology
from repro.ontology.semantic import (
    jiang_conrath_distance,
    jiang_conrath_similarity,
    lin_similarity,
    most_informative_common_ancestor,
    resnik_similarity,
)
from repro.ontology.term import Term

__all__ = [
    "Term",
    "Ontology",
    "read_obo",
    "write_obo",
    "resnik_similarity",
    "lin_similarity",
    "jiang_conrath_distance",
    "jiang_conrath_similarity",
    "most_informative_common_ancestor",
]
