"""Shim so `python setup.py develop` works on environments without the
`wheel` package (PEP 660 editable installs need bdist_wheel).  All real
metadata lives in pyproject.toml."""

from setuptools import setup

setup()
