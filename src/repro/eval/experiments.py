"""Experiment runners producing the series behind figures 5.1-5.7.

Each runner consumes a :class:`~repro.pipeline.Pipeline` (or its parts)
and returns plain result dataclasses with ``format_table()`` helpers, so
the benchmark harness can print the same rows the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.context import ContextPaperSet
from repro.core.scores.base import PrestigeScores
from repro.core.search import ContextSearchEngine
from repro.eval.ac_answer import ACAnswerBuilder, ACAnswerConfig
from repro.eval.metrics import (
    median,
    precision,
    sd_histogram,
    separability_sd,
    topk_overlap,
)
from repro.obs import get_registry, span
from repro.pipeline import Pipeline


# ---------------------------------------------------------------------------
# Precision vs relevancy threshold (figures 5.1 and 5.2)
# ---------------------------------------------------------------------------


@dataclass
class PrecisionCurve:
    """Average/median precision per relevancy threshold for one function."""

    function_name: str
    thresholds: List[float]
    average: List[float]
    median_: List[Optional[float]]
    #: Queries returning nothing at each threshold (precision counted 0 in
    #: the average, excluded from the median) -- the effect the paper uses
    #: to explain the average's high-t dip.
    empty_queries: List[int]

    def format_table(self) -> str:
        lines = [f"precision[{self.function_name}]"]
        lines.append("  t      avg     median  empty")
        for i, t in enumerate(self.thresholds):
            med = self.median_[i]
            med_text = f"{med:.3f}" if med is not None else "  -  "
            lines.append(
                f"  {t:.2f}   {self.average[i]:.3f}   {med_text}   {self.empty_queries[i]}"
            )
        return "\n".join(lines)


class PrecisionExperiment:
    """Figures 5.1/5.2: precision of context-based search per threshold.

    For every query an AC-answer set is built once; then each score
    function's search results are thresholded on relevancy and compared
    against it.
    """

    def __init__(
        self,
        pipeline: Pipeline,
        queries: Sequence[str],
        thresholds: Sequence[float] = (0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5),
        ac_config: Optional[ACAnswerConfig] = None,
        max_contexts: int = 5,
        max_workers: int = 4,
    ) -> None:
        self.pipeline = pipeline
        self.queries = list(queries)
        self.thresholds = list(thresholds)
        self.max_contexts = max_contexts
        self.max_workers = max_workers
        self.ac_builder = ACAnswerBuilder(
            pipeline.keyword_engine,
            pipeline.vectors,
            pipeline.citation_graph,
            config=ac_config,
        )
        self._answer_cache: Dict[str, frozenset] = {}

    def answer_set(self, query: str) -> frozenset:
        cached = self._answer_cache.get(query)
        if cached is None:
            cached = self.ac_builder.build(query).papers
            self._answer_cache[query] = cached
        return cached

    def run(
        self, function: str, paper_set_name: str
    ) -> PrecisionCurve:
        """Precision curve of one (score function, paper set) arm."""
        with span(
            "eval.precision.run", function=function, paper_set=paper_set_name
        ), get_registry().timer("eval.precision.seconds"):
            return self._run(function, paper_set_name)

    def run_all(self) -> Dict[Tuple[str, str], PrecisionCurve]:
        """Precision curves for every registry-declared evaluation arm.

        The sweep is driven by :func:`repro.scoring.evaluation_arms`, so
        a newly registered score function joins it automatically.
        """
        from repro import scoring

        return {
            (function, paper_set): self.run(function, paper_set)
            for function, paper_set in scoring.evaluation_arms()
        }

    def _run(self, function: str, paper_set_name: str) -> PrecisionCurve:
        engine = self.pipeline.search_engine(function, paper_set_name)
        per_threshold: List[List[float]] = [[] for _ in self.thresholds]
        empties = [0] * len(self.thresholds)
        hits_per_query = engine.search_many(
            self.queries,
            max_workers=self.max_workers,
            max_contexts=self.max_contexts,
        )
        for query, hits in zip(self.queries, hits_per_query):
            answers = self.answer_set(query)
            for i, t in enumerate(self.thresholds):
                surviving = [h.paper_id for h in hits if h.relevancy >= t]
                value = precision(surviving, answers)
                if value is None:
                    empties[i] += 1
                    per_threshold[i].append(0.0)  # average counts empties as 0
                else:
                    per_threshold[i].append(value)
        average = [
            sum(values) / len(values) if values else 0.0
            for values in per_threshold
        ]
        # Median over all queries: like the paper's median curves it is
        # robust to the zero-precision empties until they dominate.
        medians = [median(values) for values in per_threshold]
        return PrecisionCurve(
            function_name=function,
            thresholds=list(self.thresholds),
            average=average,
            median_=medians,
            empty_queries=empties,
        )


# ---------------------------------------------------------------------------
# Context-based search vs the keyword baseline (the [2] claims of section 1)
# ---------------------------------------------------------------------------


@dataclass
class BaselineComparison:
    """Output-size and accuracy comparison against the keyword baseline."""

    queries_evaluated: int
    mean_output_reduction: float
    max_output_reduction: float
    keyword_mean_precision: float
    context_mean_precision: float

    @property
    def accuracy_improvement(self) -> float:
        """Relative precision gain of context search over the baseline."""
        if self.keyword_mean_precision == 0.0:
            return float("nan")
        return self.context_mean_precision / self.keyword_mean_precision - 1.0

    def format_table(self) -> str:
        return "\n".join(
            [
                f"queries evaluated:       {self.queries_evaluated}",
                f"mean output reduction:   {self.mean_output_reduction:.1%}",
                f"max output reduction:    {self.max_output_reduction:.1%}",
                f"keyword mean precision:  {self.keyword_mean_precision:.3f}",
                f"context mean precision:  {self.context_mean_precision:.3f}",
                f"accuracy improvement:    {self.accuracy_improvement:.1%}",
            ]
        )


class BaselineComparisonExperiment:
    """Reproduces the section-1 claims quoted from reference [2]:

    context-based search "reduce[s] the query output size by up to 70%
    and increase[s] the search result accuracy by up to 50%" relative to
    the PubMed-style keyword engine.  Output size compares full result
    sets; accuracy compares precision of each full output against the
    AC-answer set.
    """

    def __init__(
        self,
        pipeline: Pipeline,
        queries: Sequence[str],
        ac_config: Optional[ACAnswerConfig] = None,
        function: str = "text",
        paper_set_name: str = "text",
    ) -> None:
        if not queries:
            raise ValueError("need at least one query")
        self.pipeline = pipeline
        self.queries = list(queries)
        self.function = function
        self.paper_set_name = paper_set_name
        self.ac_builder = ACAnswerBuilder(
            pipeline.keyword_engine,
            pipeline.vectors,
            pipeline.citation_graph,
            config=ac_config,
        )

    def run(self) -> BaselineComparison:
        with span(
            "eval.baseline.run", function=self.function
        ), get_registry().timer("eval.baseline.seconds"):
            return self._run()

    def _run(self) -> BaselineComparison:
        from repro.eval.metrics import precision as precision_metric

        engine = self.pipeline.search_engine(self.function, self.paper_set_name)
        keyword = self.pipeline.keyword_engine
        reductions: List[float] = []
        keyword_precisions: List[float] = []
        context_precisions: List[float] = []
        evaluated = 0
        for query in self.queries:
            keyword_ids = [hit.paper_id for hit in keyword.search(query)]
            if not keyword_ids:
                continue
            evaluated += 1
            answers = self.ac_builder.build(query).papers
            context_ids = engine.result_ids(query)
            reductions.append(1.0 - len(context_ids) / len(keyword_ids))
            keyword_precisions.append(
                precision_metric(keyword_ids, answers) or 0.0
            )
            context_precisions.append(
                precision_metric(context_ids, answers) or 0.0
            )
        if not evaluated:
            raise ValueError("no query produced keyword output")
        return BaselineComparison(
            queries_evaluated=evaluated,
            mean_output_reduction=sum(reductions) / evaluated,
            max_output_reduction=max(reductions),
            keyword_mean_precision=sum(keyword_precisions) / evaluated,
            context_mean_precision=sum(context_precisions) / evaluated,
        )


# ---------------------------------------------------------------------------
# Top-k% overlapping ratio per context level (figure 5.3)
# ---------------------------------------------------------------------------


@dataclass
class OverlapSeries:
    """Average overlap of one score-function pair, per level and k%."""

    pair: Tuple[str, str]
    levels: List[int]
    k_percents: List[float]
    #: values[level_index][k_index] -> average overlap (None if no contexts)
    values: List[List[Optional[float]]]
    contexts_counted: List[int]

    def format_table(self) -> str:
        lines = [f"overlap[{self.pair[0]}-{self.pair[1]}]"]
        header = "  level  n_ctx  " + "  ".join(f"k={int(k*100)}%" for k in self.k_percents)
        lines.append(header)
        for i, level in enumerate(self.levels):
            cells = []
            for j in range(len(self.k_percents)):
                value = self.values[i][j]
                cells.append(f"{value:.3f}" if value is not None else "  -  ")
            lines.append(
                f"  {level:<5}  {self.contexts_counted[i]:<5}  " + "  ".join(cells)
            )
        return "\n".join(lines)


class OverlapExperiment:
    """Figure 5.3: top-k% overlap between score-function pairs by level."""

    def __init__(
        self,
        paper_set: ContextPaperSet,
        levels: Sequence[int] = (3, 5, 7),
        k_percents: Sequence[float] = (0.05, 0.10, 0.15, 0.20),
    ) -> None:
        self.paper_set = paper_set
        self.levels = list(levels)
        self.k_percents = list(k_percents)

    def run(
        self,
        scores_a: PrestigeScores,
        scores_b: PrestigeScores,
    ) -> OverlapSeries:
        with span(
            "eval.overlap.run",
            pair=f"{scores_a.function_name}-{scores_b.function_name}",
        ), get_registry().timer("eval.overlap.seconds"):
            return self._run(scores_a, scores_b)

    def _run(
        self, scores_a: PrestigeScores, scores_b: PrestigeScores
    ) -> OverlapSeries:
        values: List[List[Optional[float]]] = []
        counted: List[int] = []
        for level in self.levels:
            contexts = self.paper_set.contexts_at_level(level)
            row: List[Optional[float]] = []
            usable = 0
            for k_percent in self.k_percents:
                samples = []
                for context in contexts:
                    a = scores_a.of(context.term_id)
                    b = scores_b.of(context.term_id)
                    if not a or not b:
                        continue
                    value = topk_overlap(a, b, k_percent=k_percent)
                    if value is not None:
                        samples.append(value)
                usable = max(usable, len(samples))
                row.append(sum(samples) / len(samples) if samples else None)
            values.append(row)
            counted.append(usable)
        return OverlapSeries(
            pair=(scores_a.function_name, scores_b.function_name),
            levels=list(self.levels),
            k_percents=list(self.k_percents),
            values=values,
            contexts_counted=counted,
        )


# ---------------------------------------------------------------------------
# Separability (figures 5.4-5.7)
# ---------------------------------------------------------------------------


@dataclass
class SeparabilityResult:
    """SD distribution of one score function over one paper set."""

    function_name: str
    #: context id -> separability SD
    sd_by_context: Dict[str, float]
    #: overall (bin_edge, percent) series -- one curve of figure 5.4
    histogram: List[Tuple[float, float]]
    #: level -> (bin_edge, percent) series -- figures 5.5/5.6/5.7
    histogram_by_level: Dict[int, List[Tuple[float, float]]]

    def mean_sd(self) -> Optional[float]:
        if not self.sd_by_context:
            return None
        return sum(self.sd_by_context.values()) / len(self.sd_by_context)

    def percent_below(self, sd_cut: float) -> float:
        """Share of contexts with SD below ``sd_cut`` (higher = better)."""
        if not self.sd_by_context:
            return 0.0
        good = sum(1 for v in self.sd_by_context.values() if v < sd_cut)
        return 100.0 * good / len(self.sd_by_context)

    def format_table(self) -> str:
        lines = [f"separability[{self.function_name}]  "
                 f"(mean SD {self.mean_sd():.2f}, {len(self.sd_by_context)} contexts)"]
        lines.append("  SD-bin  %contexts")
        for edge, percent in self.histogram:
            lines.append(f"  {edge:>5.0f}   {percent:6.1f}")
        return "\n".join(lines)


class SeparabilityExperiment:
    """Figures 5.4-5.7: SD histograms overall and per context level."""

    def __init__(
        self,
        paper_set: ContextPaperSet,
        levels: Sequence[int] = (3, 5, 7),
        n_ranges: int = 10,
    ) -> None:
        self.paper_set = paper_set
        self.levels = list(levels)
        self.n_ranges = n_ranges

    def run(self, scores: PrestigeScores) -> SeparabilityResult:
        with span(
            "eval.separability.run", function=scores.function_name
        ), get_registry().timer("eval.separability.seconds"):
            return self._run(scores)

    def _run(self, scores: PrestigeScores) -> SeparabilityResult:
        sd_by_context: Dict[str, float] = {}
        for context in self.paper_set:
            context_scores = scores.of(context.term_id)
            if not context_scores:
                continue
            sd = separability_sd(context_scores.values(), n_ranges=self.n_ranges)
            if sd is not None:
                sd_by_context[context.term_id] = sd
        by_level: Dict[int, List[Tuple[float, float]]] = {}
        for level in self.levels:
            level_sds = [
                sd
                for cid, sd in sd_by_context.items()
                if self.paper_set.ontology.level(cid) == level
            ]
            by_level[level] = sd_histogram(level_sds)
        return SeparabilityResult(
            function_name=scores.function_name,
            sd_by_context=sd_by_context,
            histogram=sd_histogram(sd_by_context.values()),
            histogram_by_level=by_level,
        )
