"""Query-serving benchmark: the single-scan fast path vs the legacy path.

The serving rework routes one :class:`QueryEvaluation` (one postings
scan) through context selection, relevancy scoring, and merging, on a
warmed, memoised engine.  The path it replaced scanned the inverted
index twice per query (probe selection + match scoring), walked every
context's full member list during the probe, and re-analysed context
term names on every request.  This bench reconstructs that legacy
algorithm from public APIs, times both over the shared bench workload,
and asserts the >= 3x floor the rework is meant to deliver (in practice
it is larger; the bar is conservative so CI noise cannot flake it).

Batch scaling of ``search_many`` is reported as well.  The suite runs on
whatever CPU budget CI grants (often a single core, where the GIL caps
thread scaling), so batching only has to not *regress* against the
sequential loop; the throughput numbers are informational.

Emits ``benchmarks/results/BENCH_query_serving_speedup.json`` (read by
``tools/check_bench_regression.py``) in addition to the per-test
``BENCH_test_perf_query_serving.json`` the conftest hook drops.
"""

import json
import time
import tracemalloc

from conftest import write_result

MIN_SPEEDUP = 3.0
#: Thread fan-out must never be slower than this factor of the
#: sequential loop (GIL-bound boxes give ~1.0x, multi-core gives > 1).
MAX_BATCH_REGRESSION = 1.5
LIMIT = 10
MAX_CONTEXTS = 5


def _legacy_search(engine, query, limit=LIMIT, max_contexts=MAX_CONTEXTS):
    """The pre-rework serving algorithm, reconstructed from public APIs.

    Two full keyword scans per query; the probe walks every context's
    member list and re-analyses every context name; rankings use full
    sorts.  Kept semantically identical to the old code so the timing
    comparison is honest.
    """
    keyword = engine.keyword_engine
    analyzer = keyword.index.analyzer
    paper_set = engine.paper_set

    # Scan 1: keyword probe for context selection.
    probe = keyword.search(query, limit=engine.probe_depth)
    probe_scores = {hit.paper_id: hit.score for hit in probe}
    query_terms = set(analyzer.analyze(query))
    strengths = {}
    for context in paper_set:
        strength = 0.0
        for paper_id in context.paper_ids:
            hit = probe_scores.get(paper_id)
            if hit is not None:
                strength += hit
        if strength == 0.0:
            continue
        strength /= max(len(context.paper_ids) ** 0.5, 1.0)
        if query_terms:
            name_terms = set(
                analyzer.analyze(engine.ontology.term(context.term_id).name)
            )
            strength += engine.name_bonus * len(query_terms & name_terms)
        strengths[context.term_id] = strength
    ranked = sorted(strengths.items(), key=lambda item: (-item[1], item[0]))
    selected = [cid for cid, _ in ranked[:max_contexts]]
    if not selected:
        return []

    # Scan 2: full keyword pass for the match scores.
    match_scores = {
        hit.paper_id: hit.score for hit in keyword.search(query)
    }
    best = {}
    for context_id in selected:
        context = paper_set.context(context_id)
        context_prestige = engine.prestige.of(context_id)
        for paper_id in context.paper_ids:
            matching = match_scores.get(paper_id, 0.0)
            if matching == 0.0:
                continue
            prestige = context_prestige.get(paper_id, 0.0)
            relevancy = (
                engine.w_prestige * prestige + engine.w_matching * matching
            )
            current = best.get(paper_id)
            if current is not None and relevancy <= current[0]:
                continue
            best[paper_id] = (relevancy, paper_id)
    hits = sorted(best.values(), key=lambda h: (-h[0], h[1]))
    return hits[:limit]


def test_perf_query_serving(pipeline, queries, results_dir):
    engine = pipeline.search_engine("text", "text").warm()
    # Warm everything both paths share (prestige, BM25 lengths, reverse
    # map) so the timed loops measure serving work, not lazy builds.
    _legacy_search(engine, queries[0])
    engine.search(queries[0], limit=LIMIT)

    started = time.perf_counter()
    for query in queries:
        _legacy_search(engine, query)
    legacy_seconds = time.perf_counter() - started

    started = time.perf_counter()
    for query in queries:
        engine.search(query, limit=LIMIT)
    fast_seconds = time.perf_counter() - started

    # Ordering parity spot check: the fast path must return the same
    # ranked ids the legacy algorithm produced (speed is worthless if
    # the rework changed what a query returns).
    for query in queries[:10]:
        legacy_ids = [paper_id for _, paper_id in _legacy_search(engine, query)]
        fast_ids = [h.paper_id for h in engine.search(query, limit=LIMIT)]
        assert fast_ids == legacy_ids

    # Batch scaling: sequential loop vs the 4-worker thread pool.
    started = time.perf_counter()
    sequential = engine.search_many(queries, max_workers=1, limit=LIMIT)
    batch1_seconds = time.perf_counter() - started
    started = time.perf_counter()
    batched = engine.search_many(queries, max_workers=4, limit=LIMIT)
    batch4_seconds = time.perf_counter() - started
    assert batched == sequential  # deterministic, input-order merge

    speedup = legacy_seconds / max(fast_seconds, 1e-9)
    batch_ratio = batch1_seconds / max(batch4_seconds, 1e-9)
    table = "\n".join([
        f"queries                   {len(queries)}",
        f"legacy two-scan path      {legacy_seconds * 1000.0:10.1f} ms",
        f"single-scan fast path     {fast_seconds * 1000.0:10.1f} ms",
        f"speedup                   {speedup:10.1f}x  (floor {MIN_SPEEDUP:.0f}x)",
        f"batch workers=1           {batch1_seconds * 1000.0:10.1f} ms",
        f"batch workers=4           {batch4_seconds * 1000.0:10.1f} ms",
        f"batch scaling             {batch_ratio:10.2f}x",
    ])
    write_result(results_dir, "perf_query_serving", table)

    payload = {
        "queries": len(queries),
        "legacy_seconds": round(legacy_seconds, 6),
        "fast_seconds": round(fast_seconds, 6),
        "single_query_speedup": round(speedup, 3),
        "floor": MIN_SPEEDUP,
        "batch_workers_1_seconds": round(batch1_seconds, 6),
        "batch_workers_4_seconds": round(batch4_seconds, 6),
        "batch_scaling": round(batch_ratio, 3),
    }
    (results_dir / "BENCH_query_serving_speedup.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    assert speedup >= MIN_SPEEDUP
    # Fan-out must not regress past noise even on a single, GIL-bound core.
    assert batch4_seconds <= batch1_seconds * MAX_BATCH_REGRESSION

    # Warm postings() must return the cached immutable tuple, not a fresh
    # list copy per call -- the allocation the tuple-view rework removed
    # from every per-query term scan.  (After the timed loops so the
    # tracemalloc hook cannot distort them.)
    index = engine.keyword_engine.index
    term = index.vocabulary()[0]
    assert index.postings(term) is index.postings(term)
    tracemalloc.start()
    for _ in range(50):
        index.postings(term)
    _, peak_bytes = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert peak_bytes < 16 * 1024, (
        f"50 warm postings() calls allocated {peak_bytes} B peak; "
        "the cached-tuple view should make them allocation-free"
    )
