#!/usr/bin/env python3
"""Lint metric and span name literals against the dotted conventions.

Scans every Python file under src/, benchmarks/, and tests/ for registry
calls -- ``counter("...")``, ``gauge("...")``, ``histogram("...")``,
``timer("...")`` -- and checks the name literal has at least three
dot-separated lowercase segments (``^[a-z][a-z0-9_]*(\\.[a-z][a-z0-9_]*){2,}$``).
An f-string placeholder (``scores.{self.name}.seconds``) counts as one
wildcard segment, so dynamic families stay lintable.

``span("...")`` literals are linted the same way against the span
convention -- ``stage.component`` or ``stage.component.detail`` (two or
three segments).

Additionally, every metric and span name emitted from ``src/`` must
appear in the catalogs of ``docs/observability.md`` (``<function>``-style
placeholders in the docs match any segment) -- adding a name without
documenting it fails CI.

Exit status 1 when any violation is found; intended for tools/ci.sh.
The runtime enforces the same metric rule
(repro.obs.metrics.validate_metric_name) -- this lint just fails
earlier, without executing the code path; span names have no runtime
check at all, so this lint is their only guard.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SCAN_DIRS = ("src", "benchmarks", "tests")

#: counter("name") / gauge(f"...") / histogram('...') / timer("...")
CALL_RE = re.compile(
    r"\b(?:counter|gauge|histogram|timer)\(\s*(f?)([\"'])((?:[^\"'\\]|\\.)*?)\2"
)
#: span("name") literals; the lookbehind keeps ``attach_span(parent)``
#: and other ``*_span`` helpers out of the match.
SPAN_CALL_RE = re.compile(
    r"(?<![\w.])span\(\s*(f?)([\"'])((?:[^\"'\\]|\\.)*?)\2"
)
#: One literal segment of a metric name.
SEGMENT_RE = re.compile(r"^[a-z][a-z0-9_]*$")
#: An f-string placeholder (may itself contain dots: ``{self.name}``).
PLACEHOLDER_RE = re.compile(r"\{[^{}]+\}")
_WILDCARD = "\x00"

#: Files whose *test fixtures* intentionally contain invalid names.
EXEMPT = {"tests/test_obs_metrics.py", "tests/test_obs_trace.py"}


def _segments(name: str, is_fstring: bool):
    """Dot-split with each f-string ``{expr}`` collapsed to a wildcard.

    Collapsing before splitting keeps a dotted expression inside the
    braces (``{self.name}``) from creating fake segments.  Returns None
    when a literal segment breaks the lowercase shape.
    """
    if is_fstring:
        name = PLACEHOLDER_RE.sub(_WILDCARD, name)
    segments = name.split(".")
    for segment in segments:
        if is_fstring and segment == _WILDCARD:
            continue
        if not SEGMENT_RE.match(segment):
            return None
    return segments


def check_name(name: str, is_fstring: bool) -> bool:
    """True when a metric name follows the convention (>= 3 segments)."""
    segments = _segments(name, is_fstring)
    return segments is not None and len(segments) >= 3


def check_span_name(name: str, is_fstring: bool) -> bool:
    """True when a span name is ``stage.component[.detail]`` (2-3 segments)."""
    segments = _segments(name, is_fstring)
    return segments is not None and 2 <= len(segments) <= 3


#: The human-maintained name catalogs every src/ name must appear in.
CATALOG_PATH = "docs/observability.md"
#: Backticked names in the catalog: segments are lowercase literals or
#: ``<placeholder>`` wildcards.  Metric entries need >= 3 segments; span
#: entries >= 2 (the span-name convention allows two).
CATALOG_NAME_RE = re.compile(
    r"`((?:[a-z][a-z0-9_]*|<[a-z_]+>)(?:\.(?:[a-z][a-z0-9_]*|<[a-z_]+>)){2,})`"
)
SPAN_CATALOG_NAME_RE = re.compile(
    r"`((?:[a-z][a-z0-9_]*|<[a-z_]+>)(?:\.(?:[a-z][a-z0-9_]*|<[a-z_]+>)){1,2})`"
)


def catalog_names(pattern=CATALOG_NAME_RE) -> list:
    """Documented names as segment tuples (wildcards = None)."""
    text = (REPO_ROOT / CATALOG_PATH).read_text(encoding="utf-8")
    names = []
    for match in pattern.finditer(text):
        segments = tuple(
            None if segment.startswith("<") else segment
            for segment in match.group(1).split(".")
        )
        names.append(segments)
    return names


def in_catalog(name: str, is_fstring: bool, catalog: list) -> bool:
    """True when a src/ name matches a documented entry."""
    if is_fstring:
        name = PLACEHOLDER_RE.sub(_WILDCARD, name)
    segments = name.split(".")
    for documented in catalog:
        if len(documented) != len(segments):
            continue
        if all(
            doc is None or src == _WILDCARD or doc == src
            for doc, src in zip(documented, segments)
        ):
            return True
    return False


def scan_file(path: Path, catalog=None, span_catalog=None) -> list:
    violations = []
    text = path.read_text(encoding="utf-8")
    for match in CALL_RE.finditer(text):
        is_fstring, name = bool(match.group(1)), match.group(3)
        line = text.count("\n", 0, match.start()) + 1
        if not check_name(name, is_fstring):
            violations.append((path, line, name, "bad metric segment shape"))
        elif catalog is not None and not in_catalog(name, is_fstring, catalog):
            violations.append(
                (path, line, name, f"not documented in {CATALOG_PATH}")
            )
    for match in SPAN_CALL_RE.finditer(text):
        is_fstring, name = bool(match.group(1)), match.group(3)
        line = text.count("\n", 0, match.start()) + 1
        if not check_span_name(name, is_fstring):
            violations.append(
                (path, line, name, "bad span segment shape (want 2-3 segments)")
            )
        elif span_catalog is not None and not in_catalog(
            name, is_fstring, span_catalog
        ):
            violations.append(
                (path, line, name, f"span not documented in {CATALOG_PATH}")
            )
    return violations


def main() -> int:
    violations = []
    catalog = catalog_names()
    span_catalog = catalog_names(SPAN_CATALOG_NAME_RE)
    for directory in SCAN_DIRS:
        root = REPO_ROOT / directory
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*.py")):
            if str(path.relative_to(REPO_ROOT)) in EXEMPT:
                continue
            # Only src/ names must be catalogued; tests and benches may
            # mint throwaway names, which still must follow the shape.
            in_src = directory == "src"
            violations.extend(
                scan_file(
                    path,
                    catalog if in_src else None,
                    span_catalog if in_src else None,
                )
            )
    if violations:
        print("metric/span name violations:")
        for path, line, name, reason in violations:
            print(f"  {path.relative_to(REPO_ROOT)}:{line}: {name!r} ({reason})")
        return 1
    print(
        "check_metric_names: all metric names follow stage.component.metric, "
        "span names follow stage.component[.detail], and src/ names are "
        "catalogued"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
