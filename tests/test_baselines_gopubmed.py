"""Unit tests for the GoPubMed-style baseline."""

import pytest

from repro.baselines.gopubmed import GoPubMedClassifier
from repro.index.inverted import InvertedIndex
from repro.index.search import KeywordSearchEngine


@pytest.fixture(scope="module")
def classifier(request):
    corpus = request.getfixturevalue("tiny_corpus")
    ontology = request.getfixturevalue("tiny_ontology")
    engine = KeywordSearchEngine(InvertedIndex().index_corpus(corpus))
    return GoPubMedClassifier(corpus, ontology, engine)


class TestClassifyPaper:
    def test_term_phrase_in_abstract(self, classifier):
        # M1's abstract: "glucose metabolic process in yeast glycolysis..."
        terms = classifier.classify_paper("M1")
        assert "glu" in terms   # 'glucose metabolic process'
        assert "met" in terms   # 'metabolic process' is a sub-phrase

    def test_no_go_words_unclassified(self, classifier):
        assert classifier.classify_paper("X1") == []

    def test_title_not_used_by_default(self, request, classifier):
        """A phrase only in the title does not classify (GoPubMed reads
        abstracts)."""
        corpus = request.getfixturevalue("tiny_corpus")
        # S1's abstract has 'signaling process'; check a paper where only
        # title matches would fail -- all tiny papers repeat phrases, so
        # assert the flag wiring instead:
        with_title = GoPubMedClassifier(
            corpus,
            request.getfixturevalue("tiny_ontology"),
            classifier.keyword_engine,
            include_title=True,
        )
        assert set(classifier.classify_paper("S1")) <= set(
            with_title.classify_paper("S1")
        )


class TestSearch:
    def test_categorised_output(self, classifier):
        categories = classifier.search("metabolic process")
        assert "met" in categories
        met_papers = categories["met"]
        assert set(met_papers) <= {"M1", "M2", "M3"}

    def test_unranked_no_scores(self, classifier):
        categories = classifier.search("metabolic process")
        for papers in categories.values():
            assert isinstance(papers, list)
            assert all(isinstance(pid, str) for pid in papers)

    def test_no_results(self, classifier):
        assert classifier.search("zebra quagga") == {}

    def test_unclassified_bucket(self, classifier):
        categories = classifier.search("quasar luminosity")
        if categories:
            assert list(categories) == ["(unclassified)"]
            assert categories["(unclassified)"] == ["X1"]


class TestCoverage:
    def test_coverage_fraction(self, classifier):
        # 5 of 6 tiny papers contain some term-name phrase; X1 does not.
        value = classifier.coverage()
        assert value == pytest.approx(5 / 6)

    def test_coverage_empty_corpus(self, request):
        from repro.corpus.corpus import Corpus

        engine = KeywordSearchEngine(InvertedIndex())
        empty = GoPubMedClassifier(
            Corpus(), request.getfixturevalue("tiny_ontology"), engine
        )
        assert empty.coverage() == 0.0
