"""Tests for the pluggable index-backend registry and its backends.

Covers the registry contract (registration, format-tag uniqueness,
temporary registration), the ondisk backend's equivalence with the
memory backend over every read API, the bounded term cache, format
sniffing/dispatch, and the refactor's acceptance criterion: a toy
third backend registered through the public API alone reaches the
pipeline and the CLI with zero edits under ``repro/core/`` or
``repro/serving/``.
"""

import json

import pytest

from repro.index import backends
from repro.index.backends import memory as memory_backend
from repro.index.backends import ondisk as ondisk_backend
from repro.index.backends.registry import SearchBackendSpec
from repro.index.inverted import InvertedIndex
from repro.index.search import KeywordSearchEngine
from repro.obs import get_registry, reset_registry
from repro.pipeline import build_demo_pipeline

QUERIES = (
    "gene expression regulation",
    "protein binding activity",
    "cell membrane transport",
)


@pytest.fixture(autouse=True)
def fresh_registry():
    reset_registry()
    yield
    reset_registry()


@pytest.fixture(scope="module")
def pipeline():
    return build_demo_pipeline(seed=11, n_papers=60, n_terms=20)


@pytest.fixture(scope="module")
def ondisk_path(pipeline, tmp_path_factory):
    path = tmp_path_factory.mktemp("backends") / "index.json"
    backends.get("ondisk").save(pipeline.index, path)
    return path


@pytest.fixture()
def ondisk_index(ondisk_path):
    index = backends.get("ondisk").load(ondisk_path)
    yield index
    index.close()


def _toy_spec(format_tag="repro/toy-index/v1", name="toy"):
    """A third backend built purely from public API: the memory codec
    under its own name and format tag."""

    def build(corpus, analyzer=None):
        index = memory_backend.build_memory_index(corpus, analyzer=analyzer)
        index.backend_name = name
        return index

    def save(index, path):
        from repro.core.io import write_tagged_json

        write_tagged_json(index.to_payload(), path, format_tag)

    def load(path, analyzer=None):
        from repro.core.io import read_tagged_json

        index = InvertedIndex.from_payload(
            read_tagged_json(path, format_tag), analyzer=analyzer
        )
        index.backend_name = name
        return index

    return SearchBackendSpec(
        name=name,
        build=build,
        save=save,
        load=load,
        format_tag=format_tag,
        description="toy third backend (memory codec, own tag)",
    )


class TestRegistry:
    def test_builtins_registered(self):
        assert backends.DEFAULT_BACKEND == "memory"
        assert set(backends.backend_names()) >= {"memory", "ondisk"}
        assert backends.is_registered("memory")
        assert backends.is_registered("ondisk")

    def test_unknown_backend_names_the_known_ones(self):
        with pytest.raises(ValueError, match="unknown index backend 'nope'"):
            backends.get("nope")
        with pytest.raises(ValueError, match="memory"):
            backends.get("nope")

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            backends.register(_toy_spec(name="memory"))

    def test_duplicate_format_tag_rejected(self):
        spec = _toy_spec(format_tag=memory_backend.MEMORY_FORMAT)
        with pytest.raises(ValueError, match="format tag"):
            backends.register(spec)

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="must match"):
            _toy_spec(name="Not-Valid")
        with pytest.raises(ValueError, match="format_tag"):
            _toy_spec(format_tag="no-slash")

    def test_temporary_registration_restores(self):
        revision = backends.registry_revision()
        with backends.temporary_registration(_toy_spec()):
            assert backends.is_registered("toy")
            assert backends.registry_revision() > revision
        assert not backends.is_registered("toy")

    def test_temporary_shadowing_restores_the_shadowed_spec(self):
        original = backends.get("memory")
        shadow = _toy_spec(name="memory", format_tag="repro/toy-index/v9")
        with pytest.raises(ValueError, match="already registered"):
            with backends.temporary_registration(shadow):
                pass  # pragma: no cover
        with backends.temporary_registration(shadow, replace=True):
            assert backends.get("memory") is shadow
        assert backends.get("memory") is original
        # Shadow restore re-appends "memory"; put the built-ins back in
        # registration order so choice lists stay stable for later tests.
        backends.register(backends.unregister("ondisk"))

    def test_spec_for_format(self):
        assert (
            backends.spec_for_format(memory_backend.MEMORY_FORMAT).name
            == "memory"
        )
        assert (
            backends.spec_for_format(ondisk_backend.ONDISK_FORMAT).name
            == "ondisk"
        )
        with pytest.raises(ValueError, match="no index backend claims"):
            backends.spec_for_format("repro/unknown/v1")


class TestOndiskEquivalence:
    def test_every_read_api_matches_memory(self, pipeline, ondisk_index):
        source = pipeline.index
        assert ondisk_index.n_papers == source.n_papers
        assert ondisk_index.n_terms == source.n_terms
        assert tuple(ondisk_index.vocabulary()) == tuple(source.vocabulary())
        papers = [p.paper_id for p in pipeline.corpus][:10]
        for term in source.vocabulary():
            assert tuple(ondisk_index.postings(term)) == tuple(
                source.postings(term)
            ), term
            assert ondisk_index.document_frequency(
                term
            ) == source.document_frequency(term)
            assert ondisk_index.papers_containing(
                term
            ) == source.papers_containing(term)
            assert (term in ondisk_index) == (term in source)
        probe_terms = list(source.vocabulary())[:5]
        from repro.corpus.paper import Section

        for paper_id in papers:
            for term in probe_terms:
                assert ondisk_index.term_frequency(
                    paper_id, term
                ) == source.term_frequency(paper_id, term)
            for section in Section:
                assert dict(
                    ondisk_index.paper_section_terms(paper_id, section)
                ) == dict(source.paper_section_terms(paper_id, section))
        assert ondisk_index.to_payload() == source.to_payload()

    @pytest.mark.parametrize("scoring", ["tfidf", "bm25"])
    def test_engine_rankings_identical(self, pipeline, ondisk_index, scoring):
        memory_engine = KeywordSearchEngine(pipeline.index, scoring=scoring)
        ondisk_engine = KeywordSearchEngine(ondisk_index, scoring=scoring)
        for query in QUERIES:
            assert ondisk_engine.search(query, limit=10) == memory_engine.search(
                query, limit=10
            )

    def test_out_of_vocabulary_term(self, ondisk_index):
        assert ondisk_index.postings("zzz_not_a_term") == ()
        assert ondisk_index.document_frequency("zzz_not_a_term") == 0
        assert ondisk_index.papers_containing("zzz_not_a_term") == []
        assert "zzz_not_a_term" not in ondisk_index

    def test_read_only(self, pipeline, ondisk_index):
        paper = next(iter(pipeline.corpus))
        with pytest.raises(TypeError, match="read-only"):
            ondisk_index.index_corpus(pipeline.corpus)
        with pytest.raises(TypeError, match="read-only"):
            ondisk_index.index_paper(paper)
        with pytest.raises(TypeError, match="read-only"):
            ondisk_index.remove_paper(paper.paper_id)

    def test_bad_magic_rejected(self, tmp_path):
        descriptor = tmp_path / "index.json"
        sidecar = tmp_path / "index.bin"
        sidecar.write_bytes(b"NOTMAGIC" + b"\x00" * 32)
        descriptor.write_text(
            json.dumps(
                {
                    "format": ondisk_backend.ONDISK_FORMAT,
                    "backend": "ondisk",
                    "data_file": "index.bin",
                }
            ),
            encoding="utf-8",
        )
        with pytest.raises(ValueError, match="bad magic"):
            backends.get("ondisk").load(descriptor)


class TestTermCache:
    def test_warm_postings_are_the_cached_tuple(self, ondisk_index):
        term = ondisk_index.vocabulary()[0]
        first = ondisk_index.postings(term)
        assert isinstance(first, tuple)
        assert ondisk_index.postings(term) is first

    def test_load_and_hit_counters(self, ondisk_index):
        term = ondisk_index.vocabulary()[0]
        loads = get_registry().counter("index.backend.term_loads")
        hits = get_registry().counter("index.backend.cache_hit")
        before_loads, before_hits = loads.value, hits.value
        ondisk_index.postings(term)
        assert loads.value == before_loads + 1
        ondisk_index.postings(term)
        assert hits.value == before_hits + 1
        assert loads.value == before_loads + 1

    def test_lru_eviction_is_bounded(self, ondisk_path):
        index = backends.get("ondisk").load(ondisk_path)
        index._term_cache_size = 2
        terms = list(index.vocabulary())[:3]
        try:
            for term in terms:
                index.postings(term)
            assert len(index._term_cache) == 2
            assert get_registry().counter("index.backend.cache_evict").value == 1
            # The evicted (oldest) term decodes again, equal to the source.
            again = index.postings(terms[0])
            assert tuple(again) == tuple(
                backends.get("ondisk").load(ondisk_path).postings(terms[0])
            )
        finally:
            index.close()

    def test_backend_stats_and_resident_bytes(self, ondisk_index):
        stats = ondisk_index.backend_stats()
        assert stats["mapped_bytes"] > 0
        assert stats["cached_terms"] == 0
        assert ondisk_index.resident_postings_bytes() == 0
        ondisk_index.postings(ondisk_index.vocabulary()[0])
        assert ondisk_index.backend_stats()["cached_terms"] == 1
        assert ondisk_index.resident_postings_bytes() > 0


class TestFormatDispatch:
    def test_sniff_and_open_both_formats(self, pipeline, ondisk_path, tmp_path):
        memory_path = tmp_path / "index_memory.json"
        backends.get("memory").save(pipeline.index, memory_path)
        assert backends.sniff_format(memory_path) == memory_backend.MEMORY_FORMAT
        assert backends.sniff_backend(memory_path) == "memory"
        assert backends.sniff_format(ondisk_path) == ondisk_backend.ONDISK_FORMAT
        assert backends.sniff_backend(ondisk_path) == "ondisk"

        opened_memory = backends.open_index(memory_path)
        assert opened_memory.backend_name == "memory"
        opened_ondisk = backends.open_index(ondisk_path)
        try:
            assert opened_ondisk.backend_name == "ondisk"
            term = pipeline.index.vocabulary()[0]
            assert tuple(opened_ondisk.postings(term)) == tuple(
                opened_memory.postings(term)
            )
        finally:
            opened_ondisk.close()

    def test_open_unreadable_file_raises(self, tmp_path):
        garbage = tmp_path / "garbage.json"
        garbage.write_text("{}", encoding="utf-8")
        with pytest.raises(ValueError, match="cannot determine index format"):
            backends.open_index(garbage)
        with pytest.raises(ValueError, match="cannot determine index format"):
            backends.open_index(tmp_path / "missing.json")
        assert backends.sniff_backend(garbage) is None

    def test_save_index_dispatches_on_backend_stamp(self, pipeline, tmp_path):
        index = pipeline.index
        path = tmp_path / "stamped.json"
        original = index.backend_name
        try:
            index.backend_name = "ondisk"
            backends.save_index(index, path)
        finally:
            index.backend_name = original
        assert backends.sniff_backend(path) == "ondisk"
        assert ondisk_backend._sidecar_path(path).exists()


class TestToyThirdBackend:
    """Acceptance criterion: a third backend registers through the public
    API and works end to end with zero edits under ``repro/core/`` or
    ``repro/serving/``."""

    def test_toy_backend_reaches_pipeline_and_cli(self, tmp_path):
        with backends.temporary_registration(_toy_spec()):
            # Pipeline: the substrate builds through the toy spec.
            pipeline = build_demo_pipeline(
                seed=11, n_papers=40, n_terms=15, index_backend="toy"
            )
            assert pipeline.index_backend == "toy"
            assert pipeline.index.backend_name == "toy"
            assert pipeline.search(QUERIES[0], limit=5) is not None

            # Codec: save_index round-trips through the toy format tag.
            path = tmp_path / "index.json"
            backends.save_index(pipeline.index, path)
            assert backends.sniff_backend(path) == "toy"
            reopened = backends.open_index(path)
            assert reopened.backend_name == "toy"
            assert reopened.to_payload() == pipeline.index.to_payload()

            # CLI: a freshly built parser offers the new backend.
            from repro.cli import build_parser

            args = build_parser().parse_args(
                ["search", "--query", "q", "--index-backend", "toy"]
            )
            assert args.index_backend == "toy"
        assert not backends.is_registered("toy")

    def test_unknown_backend_fails_fast_at_pipeline_construction(self):
        with pytest.raises(ValueError, match="unknown index backend"):
            build_demo_pipeline(
                seed=11, n_papers=40, n_terms=15, index_backend="toy"
            )


class TestMemoryViewSatellites:
    """The postings-tuple cache and vocabulary-snapshot satellites."""

    def _two_papers(self, pipeline):
        papers = iter(pipeline.corpus)
        return next(papers), next(papers)

    def test_postings_view_is_cached_and_immutable(self, pipeline):
        first_paper, second_paper = self._two_papers(pipeline)
        index = InvertedIndex()
        index.index_paper(first_paper)
        term = index.vocabulary()[0]
        view = index.postings(term)
        assert isinstance(view, tuple)
        assert index.postings(term) is view
        with pytest.raises(AttributeError):
            view.append  # tuples expose no mutators

    def test_postings_view_invalidated_by_mutation(self, pipeline):
        first_paper, second_paper = self._two_papers(pipeline)
        index = InvertedIndex()
        index.index_paper(first_paper)
        term = index.vocabulary()[0]
        before = index.postings(term)
        index.index_paper(second_paper)
        after = index.postings(term)
        assert after is not before  # stale view dropped, not mutated
        assert tuple(before) == tuple(after)[: len(before)]
        index.remove_paper(second_paper.paper_id)
        assert tuple(index.postings(term)) == tuple(before)

    def test_vocabulary_is_a_stable_snapshot(self, pipeline):
        first_paper, second_paper = self._two_papers(pipeline)
        index = InvertedIndex()
        index.index_paper(first_paper)
        snapshot = index.vocabulary()
        assert isinstance(snapshot, tuple)
        # Mutating mid-iteration must not raise or change the snapshot.
        seen = []
        for i, term in enumerate(snapshot):
            if i == 0:
                index.index_paper(second_paper)
            seen.append(term)
        assert tuple(seen) == snapshot
        fresh = index.vocabulary()
        assert set(fresh) >= set(snapshot)
