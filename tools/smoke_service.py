#!/usr/bin/env python3
"""CI smoke for the HTTP search service: start, scrape, search, stop.

Boots a :class:`~repro.serving.service.SearchService` over a small
generated corpus on an ephemeral port, then exercises the full surface
once over real HTTP:

1. ``GET /health``        -- must answer ``{"status": "ok", ...}``;
2. ``GET /metrics``       -- must expose the serving gauges;
3. ``GET /search``        -- body hits must match the same
   ``Pipeline.search`` call serialized with the same helpers
   (the byte-identical acceptance property, end to end);
4. ``GET /search`` (bad)  -- an unknown score function must be a 400;
5. ``POST /admin/reload`` -- must swap the serving view (revision bumps);
6. stop, then restart on the same port -- the rebind path must not
   raise ``EADDRINUSE``.

Seconds, not minutes: this is the "does the service even serve" check
between the lints and the full test suite in ``tools/ci.sh``, not a
benchmark (that is ``benchmarks/test_perf_serving_http.py``).
"""

from __future__ import annotations

import json
import sys
import urllib.error
import urllib.parse
import urllib.request

REPO_ROOT = __import__("pathlib").Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.datagen import CorpusGenerator, OntologyGenerator  # noqa: E402
from repro.pipeline import Pipeline  # noqa: E402
from repro.serving.service import hit_to_dict  # noqa: E402
from repro.serving import SearchService  # noqa: E402

QUERY = "gene expression"


def _fetch(base_url: str, path: str, method: str = "GET", **params):
    """(status, parsed body) -- JSON when the endpoint speaks it, else text."""
    url = base_url + path
    if params:
        url += "?" + urllib.parse.urlencode(params)
    request = urllib.request.Request(url, method=method)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            status, raw = response.status, response.read()
    except urllib.error.HTTPError as error:
        status, raw = error.code, error.read()
    try:
        return status, json.loads(raw)
    except json.JSONDecodeError:
        return status, raw.decode("utf-8")


def _check(condition: bool, message: str) -> None:
    if not condition:
        print(f"smoke_service: FAIL: {message}", file=sys.stderr)
        sys.exit(1)
    print(f"smoke_service: ok: {message}")


def main() -> int:
    dataset = CorpusGenerator(
        n_papers=200,
        ontology_generator=OntologyGenerator(n_terms=80, max_depth=5),
    ).generate(seed=7)
    pipeline = Pipeline.from_dataset(dataset, min_context_size=5)

    service = SearchService(pipeline, port=0)
    service.start()
    base_url = f"http://{service.host}:{service.port}"
    try:
        status, health = _fetch(base_url, "/health")
        _check(
            status == 200 and health.get("status") == "ok",
            f"/health answers ok (view revision {health.get('view_revision')})",
        )

        status, text = _fetch(base_url, "/metrics")
        _check(
            status == 200 and "serving_view" in text,
            "/metrics scrapes the serving-view gauges",
        )

        status, body = _fetch(
            base_url, "/search", q=QUERY, top_k=5, score_function="text"
        )
        expected = [
            hit_to_dict(hit)
            for hit in pipeline.search(QUERY, function="text", limit=5)
        ]
        _check(
            status == 200 and body["hits"] == expected,
            f"/search matches Pipeline.search ({len(expected)} hits)",
        )

        status, body = _fetch(
            base_url, "/search", q=QUERY, score_function="no-such-function"
        )
        _check(
            status == 400 and "score_function" in body.get("error", ""),
            "bad score_function is a 400",
        )

        view_before = pipeline.serving_view
        status, body = _fetch(base_url, "/admin/reload", method="POST")
        _check(
            status == 200
            and body.get("status") == "reloaded"
            and pipeline.serving_view is not view_before,
            f"/admin/reload swaps the view (revision {body.get('view_revision')})",
        )
    finally:
        service.stop()
        port = service.port

    # Rebind on the port just released must not raise EADDRINUSE.
    service = SearchService(pipeline, port=port)
    service.start()
    try:
        status, _ = _fetch(base_url, "/health")
        _check(status == 200, f"restart rebinds port {port}")
    finally:
        service.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
