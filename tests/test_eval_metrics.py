"""Unit tests for precision, top-k% overlap, and separability metrics."""

import math

import pytest

from repro.eval.metrics import (
    median,
    precision,
    sd_histogram,
    separability_sd,
    top_fraction_ids,
    topk_overlap,
)


class TestPrecision:
    def test_full_precision(self):
        assert precision(["a", "b"], ["a", "b", "c"]) == 1.0

    def test_partial(self):
        assert precision(["a", "x"], ["a"]) == 0.5

    def test_zero(self):
        assert precision(["x", "y"], ["a"]) == 0.0

    def test_empty_results_is_none(self):
        assert precision([], ["a"]) is None

    def test_empty_answers(self):
        assert precision(["a"], []) == 0.0


class TestTopFractionIds:
    def test_basic(self):
        scores = {"a": 0.9, "b": 0.5, "c": 0.1}
        assert top_fraction_ids(scores, 2) == {"a", "b"}

    def test_tie_expansion(self):
        scores = {"a": 0.9, "b": 0.5, "c": 0.5, "d": 0.1}
        assert top_fraction_ids(scores, 2) == {"a", "b", "c"}

    def test_k_exceeds_size(self):
        scores = {"a": 1.0, "b": 0.5}
        assert top_fraction_ids(scores, 10) == {"a", "b"}

    def test_zero_k(self):
        assert top_fraction_ids({"a": 1.0}, 0) == set()


class TestTopkOverlap:
    def test_identical_rankings(self):
        scores = {"a": 0.9, "b": 0.5, "c": 0.1}
        assert topk_overlap(scores, scores, k=2) == 1.0

    def test_disjoint_top(self):
        a = {"a": 0.9, "b": 0.8, "x": 0.1, "y": 0.1}
        b = {"x": 0.9, "y": 0.8, "a": 0.1, "b": 0.1}
        assert topk_overlap(a, b, k=2) == 0.0

    def test_partial_overlap(self):
        a = {"a": 0.9, "b": 0.8, "c": 0.1}
        b = {"a": 0.9, "c": 0.8, "b": 0.1}
        assert topk_overlap(a, b, k=2) == pytest.approx(0.5)

    def test_tie_changes_denominator(self):
        # a-side expands to 3 papers because of the tie at the 2nd score;
        # denominator becomes min(3, 2) = 2.
        a = {"a": 0.9, "b": 0.5, "c": 0.5}
        b = {"a": 0.9, "b": 0.5, "c": 0.1}
        value = topk_overlap(a, b, k=2)
        assert value == pytest.approx(len({"a", "b", "c"} & {"a", "b"}) / 2)

    def test_k_percent(self):
        a = {f"p{i}": 1.0 - i / 10 for i in range(10)}
        b = dict(a)
        assert topk_overlap(a, b, k_percent=0.2) == 1.0

    def test_empty_side_is_none(self):
        assert topk_overlap({}, {"a": 1.0}, k=1) is None

    def test_requires_exactly_one_mode(self):
        with pytest.raises(ValueError):
            topk_overlap({"a": 1.0}, {"a": 1.0})
        with pytest.raises(ValueError):
            topk_overlap({"a": 1.0}, {"a": 1.0}, k=1, k_percent=0.1)

    def test_k_percent_validation(self):
        with pytest.raises(ValueError):
            topk_overlap({"a": 1.0}, {"a": 1.0}, k_percent=0.0)

    def test_symmetry(self):
        a = {"a": 0.9, "b": 0.8, "c": 0.1}
        b = {"a": 0.2, "c": 0.9, "b": 0.5}
        assert topk_overlap(a, b, k=2) == topk_overlap(b, a, k=2)


class TestSeparabilitySd:
    def test_perfectly_uniform(self):
        # One score per range: 10% in each of 10 ranges -> SD 0.
        scores = [i / 10 + 0.05 for i in range(10)]
        assert separability_sd(scores) == pytest.approx(0.0)

    def test_degenerate_all_same(self):
        # Everything in one range: X = [100, 0, ..., 0].
        sd = separability_sd([0.5] * 20)
        expected = math.sqrt(((100 - 10) ** 2 + 9 * (0 - 10) ** 2) / 10)
        assert sd == pytest.approx(expected)  # = 30.0

    def test_uniform_better_than_clustered(self):
        uniform = [i / 10 + 0.05 for i in range(10)]
        clustered = [0.5] * 10
        assert separability_sd(uniform) < separability_sd(clustered)

    def test_boundary_value_one(self):
        # A score of exactly 1.0 lands in the last range, not out of bounds.
        assert separability_sd([1.0, 0.0]) is not None

    def test_empty_is_none(self):
        assert separability_sd([]) is None

    def test_invalid_ranges(self):
        with pytest.raises(ValueError):
            separability_sd([0.5], n_ranges=0)


class TestSdHistogram:
    def test_distribution(self):
        values = [2, 7, 12, 37, 99]
        histogram = dict(sd_histogram(values))
        assert histogram[0] == pytest.approx(20.0)
        assert histogram[5] == pytest.approx(20.0)
        assert histogram[10] == pytest.approx(20.0)
        # 37 and 99 both land in the final [35, 40) bin (overflow included).
        assert histogram[35] == pytest.approx(40.0)

    def test_empty(self):
        assert all(percent == 0.0 for _, percent in sd_histogram([]))

    def test_percentages_sum_to_100(self):
        values = [1, 6, 11, 16, 21, 26, 31, 36]
        total = sum(percent for _, percent in sd_histogram(values))
        assert total == pytest.approx(100.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            sd_histogram([1.0], bin_edges=(5, 0))


class TestMedian:
    def test_odd(self):
        assert median([3, 1, 2]) == 2

    def test_even(self):
        assert median([4, 1, 3, 2]) == 2.5

    def test_empty(self):
        assert median([]) is None
