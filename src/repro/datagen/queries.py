"""Query-workload generation.

The paper's accuracy experiments use ~120 search terms "selected from
non-GO concepts of external life sciences classification systems (e.g.,
TIGR roles), which have been manually mapped to GO terms".  The essential
properties: queries are *topical* (they share vocabulary with some
ontology subtree) but are **not verbatim term names** (they come from a
different classification system).

The generator reproduces that: each query samples a target term, then
mixes words from the term's topic (jargon + partial name words) without
ever emitting the full term name phrase.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from repro.datagen.corpus_gen import GeneratedDataset


@dataclass(frozen=True)
class QueryWorkload:
    """One generated query and its provenance."""

    query: str
    #: The ontology term whose topic the query was drawn from.  This is
    #: generator provenance for diagnostics -- evaluation never uses it to
    #: compute scores (AC-answer sets are built from retrieval alone).
    source_term_id: str


def generate_queries(
    dataset: GeneratedDataset,
    n_queries: int = 120,
    seed: int = 0,
    min_words: int = 2,
    max_words: int = 4,
    min_level: int = 2,
) -> List[QueryWorkload]:
    """Generate ``n_queries`` topical multi-word queries.

    Terms are sampled uniformly from levels >= ``min_level`` (root-level
    topics are too diffuse to be search terms, matching TIGR roles which
    map to mid-hierarchy GO terms).
    """
    if n_queries < 1:
        raise ValueError(f"n_queries must be >= 1, got {n_queries}")
    if min_words < 1 or max_words < min_words:
        raise ValueError(
            f"need 1 <= min_words <= max_words, got {min_words}..{max_words}"
        )
    rng = random.Random(seed)
    ontology = dataset.ontology
    eligible = [
        tid for tid in ontology.term_ids() if ontology.level(tid) >= min_level
    ]
    if not eligible:
        eligible = ontology.term_ids()
    workload: List[QueryWorkload] = []
    for _ in range(n_queries):
        term_id = rng.choice(eligible)
        words = _query_words(rng, dataset, term_id, min_words, max_words)
        workload.append(QueryWorkload(query=" ".join(words), source_term_id=term_id))
    return workload


def _query_words(
    rng: random.Random,
    dataset: GeneratedDataset,
    term_id: str,
    min_words: int,
    max_words: int,
) -> List[str]:
    """Mix jargon and partial name words; never the full name phrase."""
    term = dataset.ontology.term(term_id)
    name_words = [w for w in term.name_words() if len(w) > 2]
    jargon = dataset.topics.jargon_of(term_id)
    n_words = rng.randint(min_words, max_words)
    pool: List[str] = []
    # At least one selective jargon word keeps the query anchored to the
    # topic even when name words are generic ("cellular", "process").
    if jargon:
        pool.append(rng.choice(jargon))
    candidates = name_words + jargon
    rng.shuffle(candidates)
    for word in candidates:
        if len(pool) >= n_words:
            break
        if word not in pool:
            pool.append(word)
    # Guard: never the exact full name phrase in order.
    if " ".join(pool) == term.name.lower():
        pool = pool[:-1] if len(pool) > 1 else pool + [rng.choice(jargon or ["assay"])]
    return pool[:max_words]
