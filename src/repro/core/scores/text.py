"""Text-based prestige (section 3.2).

The prestige of paper PX in context C is its weighted similarity to C's
representative paper PC across six facets:

    Sim(PX, PC) = sum_i weight_i * Sim_i(PX, PC)
    i in {title, abstract, body, index terms, authors, references}

- the four textual facets use cosine TF-IDF (per-section models);
- authors use Level-0 (shared authors) and Level-1 (co-authorship via a
  third paper) overlap:
      SimAuthors = L0Weight * SimL0 + L1Weight * SimL1
- references use bibliographic coupling + co-citation:
      SimReferences = BibWeight * Sim_bib + (1 - BibWeight) * Sim_coc
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.citations.coupling import citation_similarity
from repro.citations.graph import CitationGraph
from repro.core.context import Context
from repro.core.scores.base import PrestigeScoreFunction
from repro.core.vectors import PaperVectorStore
from repro.corpus.corpus import Corpus
from repro.corpus.paper import Section
from repro.text.similarity import overlap_coefficient


@dataclass(frozen=True)
class FacetWeights:
    """Weights of the six similarity facets plus the sub-facet splits.

    Defaults spread weight across content facets with body and abstract
    dominating (they carry most of a paper's signal), and modest weight on
    social facets -- the weighting regime the paper's earlier work [7]
    used for publication similarity.
    """

    title: float = 0.15
    abstract: float = 0.25
    body: float = 0.30
    index_terms: float = 0.10
    authors: float = 0.10
    references: float = 0.10
    #: L0Weight / L1Weight inside the author facet.
    level0_author: float = 0.7
    level1_author: float = 0.3
    #: BibWeight inside the reference facet.
    bibliographic: float = 0.5

    def validate(self) -> None:
        for name in (
            "title", "abstract", "body", "index_terms", "authors", "references",
            "level0_author", "level1_author", "bibliographic",
        ):
            value = getattr(self, name)
            if value < 0.0:
                raise ValueError(f"facet weight {name} must be >= 0, got {value}")
        if self.bibliographic > 1.0:
            raise ValueError("bibliographic weight is a fraction in [0, 1]")


class TextPrestige(PrestigeScoreFunction):
    """Multi-facet similarity to the context's representative paper."""

    name = "text"
    #: The weighted facet similarity is already a [0, 1] score -- cosine
    #: and overlap facets are bounded and the weights sum to about 1 -- so
    #: scores are used raw, exactly as Sim(PX, PC) defines them.
    normalization = "none"

    def __init__(
        self,
        corpus: Corpus,
        vectors: PaperVectorStore,
        graph: CitationGraph,
        representatives: Mapping[str, str],
        weights: Optional[FacetWeights] = None,
    ) -> None:
        self.corpus = corpus
        self.vectors = vectors
        self.graph = graph
        self.representatives = dict(representatives)
        self.weights = weights if weights is not None else FacetWeights()
        self.weights.validate()
        self._coauthor_cache: Dict[str, frozenset] = {}

    def score_context(self, context: Context) -> Dict[str, float]:
        representative = self.representatives.get(context.term_id)
        if representative is None or representative not in self.corpus:
            return {}
        return {
            paper_id: self.similarity(paper_id, representative)
            for paper_id in context.paper_ids
        }

    # -- the composite similarity --------------------------------------------------

    def similarity(self, paper_id: str, representative: str) -> float:
        """Sim(PX, PC): the full six-facet weighted similarity."""
        w = self.weights
        total = 0.0
        if w.title:
            total += w.title * self.vectors.section_similarity(
                paper_id, representative, Section.TITLE
            )
        if w.abstract:
            total += w.abstract * self.vectors.section_similarity(
                paper_id, representative, Section.ABSTRACT
            )
        if w.body:
            total += w.body * self.vectors.section_similarity(
                paper_id, representative, Section.BODY
            )
        if w.index_terms:
            total += w.index_terms * self.vectors.section_similarity(
                paper_id, representative, Section.INDEX_TERMS
            )
        if w.authors:
            total += w.authors * self.author_similarity(paper_id, representative)
        if w.references:
            total += w.references * citation_similarity(
                self.graph, paper_id, representative, bib_weight=w.bibliographic
            )
        return total

    def author_similarity(self, paper_a: str, paper_b: str) -> float:
        """SimAuthors = L0Weight * SimL0 + L1Weight * SimL1.

        Level-0: overlap of the two author lists.  Level-1: overlap
        between each paper's authors and the *co-author expansion* of the
        other's (authors who share a third paper with them).
        """
        authors_a = set(self.corpus.paper(paper_a).authors)
        authors_b = set(self.corpus.paper(paper_b).authors)
        w = self.weights
        level0 = overlap_coefficient(authors_a, authors_b)
        level1 = 0.0
        if w.level1_author:
            expanded_a = self._coauthors(paper_a)
            expanded_b = self._coauthors(paper_b)
            forward = overlap_coefficient(authors_a, expanded_b)
            backward = overlap_coefficient(authors_b, expanded_a)
            level1 = (forward + backward) / 2.0
        return w.level0_author * level0 + w.level1_author * level1

    def _coauthors(self, paper_id: str) -> frozenset:
        cached = self._coauthor_cache.get(paper_id)
        if cached is None:
            cached = frozenset(self.corpus.coauthors_of(paper_id))
            self._coauthor_cache[paper_id] = cached
        return cached
