#!/usr/bin/env bash
# Local CI: static lints + the tier-1 test suite.
#
#   tools/ci.sh            run everything
#
# Exits non-zero on the first failing step.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO_ROOT"

echo "== lint: metric name convention =="
python tools/check_metric_names.py

echo
echo "== lint: score-function registry =="
python tools/check_score_registry.py

echo
echo "== lint: index-backend registry =="
python tools/check_index_backends.py

echo
echo "== lint: workspace artifact registry =="
python tools/check_workspace_manifest.py

echo
echo "== bench: regression gates (serving speedup, obs overhead, index backend, http qps) =="
python tools/check_bench_regression.py

echo
echo "== smoke: http search service (start, scrape, search, reload, stop) =="
python tools/smoke_service.py

echo
echo "== tests: tier-1 suite =="
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest -x -q
