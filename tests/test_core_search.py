"""Unit tests for the context-based search engine."""

import pytest

from repro.citations.graph import CitationGraph
from repro.core.context import Context, ContextPaperSet
from repro.core.scores import CitationPrestige, TextPrestige
from repro.core.search import ContextSearchEngine
from repro.core.vectors import PaperVectorStore
from repro.index.inverted import InvertedIndex
from repro.index.search import KeywordSearchEngine


@pytest.fixture(scope="module")
def setup(request):
    corpus = request.getfixturevalue("tiny_corpus")
    ontology = request.getfixturevalue("tiny_ontology")
    index = InvertedIndex().index_corpus(corpus)
    vectors = PaperVectorStore(corpus, index.analyzer)
    graph = CitationGraph.from_corpus(corpus)
    paper_set = ContextPaperSet(
        ontology,
        [
            Context("met", ("M1", "M2", "M3")),
            Context("sig", ("S1", "S2")),
            Context("glu", ("M1", "M2")),
        ],
    )
    prestige = TextPrestige(
        corpus, vectors, graph, {"met": "M1", "sig": "S1", "glu": "M1"}
    ).score_all(paper_set)
    keyword = KeywordSearchEngine(index)
    engine = ContextSearchEngine(ontology, paper_set, prestige, keyword)
    return {
        "engine": engine,
        "paper_set": paper_set,
        "keyword": keyword,
        "ontology": ontology,
        "prestige": prestige,
    }


class TestContextSelection:
    def test_topical_context_selected_first(self, setup):
        selections = setup["engine"].select_contexts("glucose metabolic glycolysis")
        assert selections
        assert selections[0].context_id in {"met", "glu"}

    def test_off_topic_query_selects_nothing(self, setup):
        assert setup["engine"].select_contexts("quasar telescope") == []

    def test_max_contexts_respected(self, setup):
        assert len(setup["engine"].select_contexts("process", max_contexts=1)) <= 1

    def test_strengths_sorted_descending(self, setup):
        selections = setup["engine"].select_contexts("metabolic glucose process")
        strengths = [s.strength for s in selections]
        assert strengths == sorted(strengths, reverse=True)


class TestSearch:
    def test_end_to_end(self, setup):
        hits = setup["engine"].search("glucose metabolic")
        assert hits
        ids = [h.paper_id for h in hits]
        assert "M1" in ids
        assert "X1" not in ids

    def test_relevancy_combines_prestige_and_matching(self, setup):
        hits = setup["engine"].search("glucose metabolic")
        for hit in hits:
            expected = 0.5 * hit.prestige + 0.5 * hit.matching
            assert hit.relevancy == pytest.approx(expected)

    def test_sorted_by_relevancy(self, setup):
        hits = setup["engine"].search("metabolic process")
        values = [h.relevancy for h in hits]
        assert values == sorted(values, reverse=True)

    def test_merge_keeps_best_context(self, setup):
        """M1 is in both met and glu; merged output lists it once."""
        hits = setup["engine"].search("glucose metabolic", contexts=["met", "glu"])
        ids = [h.paper_id for h in hits]
        assert ids.count("M1") == 1

    def test_threshold_filters(self, setup):
        everything = setup["engine"].search("metabolic", contexts=["met"])
        top = max(h.relevancy for h in everything)
        strict = setup["engine"].search("metabolic", contexts=["met"], threshold=top)
        assert all(h.relevancy >= top for h in strict)
        assert len(strict) <= len(everything)

    def test_limit(self, setup):
        hits = setup["engine"].search("metabolic process", limit=1)
        assert len(hits) == 1

    def test_explicit_contexts_skip_selection(self, setup):
        hits = setup["engine"].search("kinase receptor", contexts=["sig"])
        assert {h.context_id for h in hits} == {"sig"}

    def test_unknown_explicit_context_ignored(self, setup):
        assert setup["engine"].search("kinase", contexts=["nope"]) == []

    def test_no_text_match_no_hit(self, setup):
        """Prestigious papers without any query-term match never surface."""
        hits = setup["engine"].search("quasar", contexts=["met"])
        assert hits == []

    def test_result_ids_helper(self, setup):
        ids = setup["engine"].result_ids("glucose metabolic")
        assert ids == [h.paper_id for h in setup["engine"].search("glucose metabolic")]


class TestWeights:
    def test_prestige_only_ranking(self, setup):
        engine = ContextSearchEngine(
            setup["ontology"],
            setup["paper_set"],
            setup["prestige"],
            setup["keyword"],
            w_prestige=1.0,
            w_matching=0.0,
        )
        hits = engine.search("metabolic", contexts=["met"])
        for hit in hits:
            assert hit.relevancy == pytest.approx(hit.prestige)

    def test_matching_only_ranking(self, setup):
        engine = ContextSearchEngine(
            setup["ontology"],
            setup["paper_set"],
            setup["prestige"],
            setup["keyword"],
            w_prestige=0.0,
            w_matching=1.0,
        )
        hits = engine.search("metabolic", contexts=["met"])
        for hit in hits:
            assert hit.relevancy == pytest.approx(hit.matching)

    def test_invalid_weights(self, setup):
        with pytest.raises(ValueError):
            ContextSearchEngine(
                setup["ontology"],
                setup["paper_set"],
                setup["prestige"],
                setup["keyword"],
                w_prestige=0.0,
                w_matching=0.0,
            )
        with pytest.raises(ValueError):
            ContextSearchEngine(
                setup["ontology"],
                setup["paper_set"],
                setup["prestige"],
                setup["keyword"],
                w_prestige=-1.0,
            )
