"""Content fingerprints for workspace artifacts.

An artifact is *fresh* when the fingerprint recorded in the manifest
matches the fingerprint recomputed from the live inputs.  Fingerprints
compose three ingredients:

- **input digests** -- SHA-256 over the canonical JSON of the corpus,
  the ontology, and the training map (the three raw inputs every
  artifact ultimately derives from);
- **config digest** -- the pipeline parameters the artifact actually
  reads (declared per artifact; ``w_prestige`` is a search-time weight,
  so changing it invalidates nothing);
- **dependency fingerprints** -- chained in topological order, so a
  change anywhere upstream ripples to every dependent node.

Everything is hashed through canonical JSON (sorted keys, no
whitespace), so fingerprints are stable across processes and
``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

from repro.corpus.corpus import Corpus
from repro.ontology.ontology import Ontology


def digest_json(payload) -> str:
    """SHA-256 hex digest of the canonical JSON encoding of ``payload``."""
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def corpus_digest(corpus: Corpus) -> str:
    """Digest over every paper record, in corpus order."""
    return digest_json([paper.to_dict() for paper in corpus])


def ontology_digest(ontology: Ontology) -> str:
    """Digest over every term (id, name, namespace, parents)."""
    return digest_json(
        [
            [term.term_id, term.name, term.namespace, list(term.parent_ids)]
            for term in ontology
        ]
    )


def training_digest(training_papers: Mapping[str, Sequence[str]]) -> str:
    """Digest over the term -> evidence-paper map."""
    return digest_json({k: list(v) for k, v in training_papers.items()})


@dataclass(frozen=True)
class InputDigests:
    """The three raw-input digests every artifact fingerprint includes."""

    corpus: str
    ontology: str
    training: str

    @classmethod
    def of_pipeline(cls, pipeline) -> "InputDigests":
        return cls(
            corpus=corpus_digest(pipeline.corpus),
            ontology=ontology_digest(pipeline.ontology),
            training=training_digest(pipeline.training_papers),
        )

    @property
    def combined(self) -> str:
        return digest_json([self.corpus, self.ontology, self.training])


def artifact_fingerprints(pipeline, inputs: InputDigests = None) -> Dict[str, str]:
    """Fingerprint of every registered artifact for ``pipeline``'s inputs.

    Computed in one topological pass so dependency fingerprints are
    available when a dependent node is hashed.
    """
    from repro.workspace.artifact import ARTIFACTS, topological_order

    if inputs is None:
        inputs = InputDigests.of_pipeline(pipeline)
    fingerprints: Dict[str, str] = {}
    for name in topological_order():
        artifact = ARTIFACTS[name]
        config = {key: getattr(pipeline, key) for key in artifact.config_keys}
        fingerprints[name] = digest_json(
            {
                "artifact": artifact.name,
                "schema_version": artifact.schema_version,
                "inputs": inputs.combined,
                "config": config,
                "deps": [fingerprints[dep] for dep in artifact.deps],
            }
        )
    return fingerprints
