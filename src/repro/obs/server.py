"""Stdlib HTTP exposition endpoint: ``/metrics``, ``/health``, ``/slo``.

The observability substrate the ROADMAP's search service will mount --
``repro obs serve --port 9188`` runs it standalone today.  Routes:

- ``GET /metrics``  -- Prometheus text exposition of the process-wide
  registry (:mod:`repro.obs.prom`);
- ``GET /health``   -- JSON liveness: status, uptime, serving-view
  revision/age when a pipeline is attached;
- ``GET /slo``      -- JSON list of declared objectives evaluated over
  the rolling window (:mod:`repro.obs.slo`), with error budgets;
- ``GET /slowlog``  -- JSON dump of the slow-query log (slowest first).

Built on :class:`http.server.ThreadingHTTPServer` so a slow scraper
cannot block a health probe.  *Collectors* -- zero-arg callables such as
``ServingView.export_gauges`` -- run at the top of every scrape, which is
how point-in-time gauges (view age, cache hit rate) stay current without
a background refresher thread.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional, Sequence

from repro.obs.logs import get_logger
from repro.obs.metrics import get_registry
from repro.obs.prom import render_prometheus
from repro.obs.request import get_telemetry

__all__ = ["ExpositionServer"]

_log = get_logger("obs.server")


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-obs/1"
    #: Set by ExpositionServer on the server instance; read via self.server.
    exposition: "ExpositionServer"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        exposition = self.server.exposition  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path == "/metrics":
                body = exposition.render_metrics()
                content_type = "text/plain; version=0.0.4; charset=utf-8"
            elif path == "/health":
                body = exposition.render_health()
                content_type = "application/json"
            elif path == "/slo":
                body = exposition.render_slo()
                content_type = "application/json"
            elif path == "/slowlog":
                body = exposition.render_slowlog()
                content_type = "application/json"
            else:
                self._respond(
                    404, "application/json",
                    json.dumps({"error": f"no route {path!r}"}) + "\n",
                )
                return
        except Exception as error:  # surface handler bugs to the scraper
            self._respond(
                500, "application/json",
                json.dumps({"error": f"{type(error).__name__}: {error}"})
                + "\n",
            )
            return
        self._respond(200, content_type, body)

    def _respond(self, status: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args: Any) -> None:
        _log.debug("http.request", detail=format % args)


class ExpositionServer:
    """Owns the HTTP server plus the scrape-time gauge collectors.

    ``port=0`` binds an ephemeral port (tests); read :attr:`port` after
    :meth:`start` for the bound value.  ``collectors`` run (exceptions
    swallowed per collector) before every ``/metrics`` scrape and
    ``/health`` probe so exported gauges reflect scrape time.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 9188,
        collectors: Sequence[Callable[[], Any]] = (),
        health_info: Optional[Callable[[], Dict[str, Any]]] = None,
    ) -> None:
        self.collectors = list(collectors)
        self.health_info = health_info
        self.started_at = time.monotonic()
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.exposition = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    # -- rendering (also used directly by tests) -------------------------------------

    def _collect(self) -> None:
        for collector in self.collectors:
            try:
                collector()
            except Exception as error:
                _log.warning(
                    "collector.failed", collector=repr(collector), error=str(error)
                )

    def render_metrics(self) -> str:
        self._collect()
        return render_prometheus(get_registry().snapshot())

    def render_health(self) -> str:
        self._collect()
        info: Dict[str, Any] = {
            "status": "ok",
            "uptime_s": round(time.monotonic() - self.started_at, 3),
        }
        if self.health_info is not None:
            try:
                info.update(self.health_info())
            except Exception as error:
                info["status"] = "degraded"
                info["error"] = f"{type(error).__name__}: {error}"
        return json.dumps(info, sort_keys=True) + "\n"

    def render_slo(self) -> str:
        statuses = [
            status.to_dict() for status in get_telemetry().slo_statuses()
        ]
        return json.dumps({"slo": statuses}, sort_keys=True) + "\n"

    def render_slowlog(self) -> str:
        return (
            json.dumps(
                {"slowlog": get_telemetry().slowlog.to_dicts()},
                sort_keys=True,
            )
            + "\n"
        )

    # -- lifecycle -------------------------------------------------------------------

    def start(self) -> "ExpositionServer":
        """Serve in a daemon thread; returns self for chaining."""
        if self._thread is not None:
            raise RuntimeError("exposition server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-obs-http",
            daemon=True,
        )
        self._thread.start()
        _log.info("serving", host=self.host, port=self.port)
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ExpositionServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False
