"""A(rtificially) C(onstructed) answer sets (section 2).

The paper measures precision against answer sets built *without expert
labelling*, in three steps:

1. **Seed** -- a standard keyword search with a *high* threshold gives the
   initial answer set.
2. **Text expansion** -- papers sufficiently similar to the *centroid* of
   the initial set join it.
3. **Citation expansion** -- papers on citation paths of length at most 2
   from the initial set, *with high citation scores*, join it ("longer
   paths usually lose context").

"High citation score" is realised as a corpus-wide PageRank percentile
among the path-reachable candidates; the paper's own cut-off is not
published.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Set

from repro.citations.graph import CitationGraph
from repro.citations.pagerank import pagerank
from repro.core.vectors import PaperVectorStore
from repro.index.search import KeywordSearchEngine


@dataclass(frozen=True)
class ACAnswerConfig:
    """Thresholds of the three construction steps."""

    #: Keyword-score bar for the seed set ("high threshold").
    seed_threshold: float = 0.30
    #: Cap on seed size (the strongest hits only).
    max_seed: int = 50
    #: Seeds must contain *every* query term (PubMed's AND semantics --
    #: "a standard keyword-based search").  Partial matches on ubiquitous
    #: query words would otherwise seed the answer set off-topic.
    seed_requires_all_terms: bool = True
    #: Cosine bar against the seed centroid for text expansion.
    centroid_similarity: float = 0.22
    #: Citation path length bound (the paper fixes 2).
    max_hops: int = 2
    #: Candidates must sit at or above this PageRank percentile among the
    #: path-reachable papers to join via citation expansion.
    citation_percentile: float = 0.75
    #: Hard cap on citation-expansion size.  Two undirected hops from the
    #: seeds reach a large share of a well-connected corpus; "high citation
    #: scores" means the handful of genuinely prominent reachable papers,
    #: not a fifth of the corpus.
    max_citation_expansion: int = 40
    #: Citation-expansion candidates must also clear this fraction of the
    #: centroid-similarity bar.  At PubMed scale (72k papers, sparse global
    #: graph) a 2-hop citation neighbourhood is inherently topical; on a
    #: smaller, denser synthetic corpus the same walk reaches off-topic
    #: papers (broad surveys above all), so a topicality floor restores
    #: the paper's premise that citation expansion stays on-context.  1.0
    #: = the same bar as text expansion.
    citation_centroid_floor: float = 1.0

    def validate(self) -> None:
        if not 0.0 <= self.seed_threshold <= 1.0:
            raise ValueError(f"seed_threshold in [0,1], got {self.seed_threshold}")
        if self.max_seed < 1:
            raise ValueError(f"max_seed must be >= 1, got {self.max_seed}")
        if not 0.0 <= self.centroid_similarity <= 1.0:
            raise ValueError(
                f"centroid_similarity in [0,1], got {self.centroid_similarity}"
            )
        if self.max_hops < 0:
            raise ValueError(f"max_hops must be >= 0, got {self.max_hops}")
        if not 0.0 <= self.citation_percentile <= 1.0:
            raise ValueError(
                f"citation_percentile in [0,1], got {self.citation_percentile}"
            )
        if self.max_citation_expansion < 0:
            raise ValueError(
                f"max_citation_expansion must be >= 0, got "
                f"{self.max_citation_expansion}"
            )
        if not 0.0 <= self.citation_centroid_floor <= 1.0:
            raise ValueError(
                f"citation_centroid_floor in [0,1], got "
                f"{self.citation_centroid_floor}"
            )


@dataclass(frozen=True)
class ACAnswerSet:
    """The constructed answer set with per-step provenance."""

    query: str
    seeds: FrozenSet[str]
    text_expanded: FrozenSet[str]
    citation_expanded: FrozenSet[str]

    @property
    def papers(self) -> FrozenSet[str]:
        """The full AC-answer set (union of all three steps)."""
        return self.seeds | self.text_expanded | self.citation_expanded

    def __contains__(self, paper_id: str) -> bool:
        return (
            paper_id in self.seeds
            or paper_id in self.text_expanded
            or paper_id in self.citation_expanded
        )

    def __len__(self) -> int:
        return len(self.papers)


class ACAnswerBuilder:
    """Builds AC-answer sets for queries over one corpus."""

    def __init__(
        self,
        keyword_engine: KeywordSearchEngine,
        vectors: PaperVectorStore,
        graph: CitationGraph,
        config: Optional[ACAnswerConfig] = None,
    ) -> None:
        self.keyword_engine = keyword_engine
        self.vectors = vectors
        self.graph = graph
        self.config = config if config is not None else ACAnswerConfig()
        self.config.validate()
        self._global_pagerank: Optional[Dict[str, float]] = None

    def build(self, query: str) -> ACAnswerSet:
        """Construct the AC-answer set of ``query`` (may be empty)."""
        seeds = self._seed_set(query)
        if not seeds:
            return ACAnswerSet(
                query=query,
                seeds=frozenset(),
                text_expanded=frozenset(),
                citation_expanded=frozenset(),
            )
        centroid = self.vectors.centroid_of(seeds)
        text_expanded = self._text_expansion(seeds, centroid)
        citation_expanded = self._citation_expansion(seeds, centroid)
        return ACAnswerSet(
            query=query,
            seeds=frozenset(seeds),
            text_expanded=frozenset(text_expanded - seeds),
            citation_expanded=frozenset(citation_expanded - seeds - text_expanded),
        )

    # -- step 1: high-threshold keyword seed ----------------------------------------

    def _seed_set(self, query: str) -> Set[str]:
        hits = self.keyword_engine.search(
            query,
            threshold=self.config.seed_threshold,
            limit=self.config.max_seed,
            require_all_terms=self.config.seed_requires_all_terms,
        )
        return {hit.paper_id for hit in hits}

    # -- step 2: centroid text expansion ----------------------------------------------

    def _text_expansion(self, seeds: Set[str], center) -> Set[str]:
        if not center:
            return set()
        expanded: Set[str] = set()
        # Candidate pruning: only papers sharing a strong centroid term can
        # clear a cosine bar; take the centroid's heaviest terms.
        vocabulary = self.vectors.full_model.vocabulary
        candidates: Set[str] = set()
        for term_id, _weight in center.top_terms(30):
            term = vocabulary.term_of(term_id)
            candidates.update(self.keyword_engine.index.papers_containing(term))
        for paper_id in candidates:
            if paper_id in seeds:
                continue
            if self.vectors.full_vector(paper_id).cosine(center) >= (
                self.config.centroid_similarity
            ):
                expanded.add(paper_id)
        return expanded

    # -- step 3: bounded citation expansion ---------------------------------------------

    def _citation_expansion(self, seeds: Set[str], center) -> Set[str]:
        if self.config.max_hops == 0:
            return set()
        reachable = self.graph.within_path_length(seeds, self.config.max_hops)
        candidates = reachable - seeds
        if candidates and center and self.config.citation_centroid_floor > 0.0:
            floor = self.config.citation_centroid_floor * (
                self.config.centroid_similarity
            )
            candidates = {
                pid
                for pid in candidates
                if self.vectors.full_vector(pid).cosine(center) >= floor
            }
        if not candidates:
            return set()
        scores = self._pagerank_scores()
        # Secondary key: paper id, so score ties cannot leak the set's
        # hash-dependent iteration order into the answer set (run-to-run
        # determinism regardless of PYTHONHASHSEED).
        ranked = sorted(candidates, key=lambda pid: (scores.get(pid, 0.0), pid))
        cut = int(len(ranked) * self.config.citation_percentile)
        kept = ranked[cut:]
        if len(kept) > self.config.max_citation_expansion:
            kept = kept[-self.config.max_citation_expansion :]
        return set(kept)

    def _pagerank_scores(self) -> Dict[str, float]:
        """Corpus-wide PageRank, computed once ("high citation scores")."""
        if self._global_pagerank is None:
            self._global_pagerank = pagerank(self.graph).scores
        return self._global_pagerank
