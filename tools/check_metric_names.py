#!/usr/bin/env python3
"""Lint metric-name literals against the stage.component.metric convention.

Scans every Python file under src/, benchmarks/, and tests/ for registry
calls -- ``counter("...")``, ``gauge("...")``, ``histogram("...")``,
``timer("...")`` -- and checks the name literal has at least three
dot-separated lowercase segments (``^[a-z][a-z0-9_]*(\\.[a-z][a-z0-9_]*){2,}$``).
An f-string placeholder (``scores.{self.name}.seconds``) counts as one
wildcard segment, so dynamic families stay lintable.

Additionally, every metric name emitted from ``src/`` must appear in the
metric catalog of ``docs/observability.md`` (``<function>``-style
placeholders in the docs match any segment) -- adding a metric without
documenting it fails CI.

Exit status 1 when any violation is found; intended for tools/ci.sh.
The runtime enforces the same rule (repro.obs.metrics.validate_metric_name)
-- this lint just fails earlier, without executing the code path.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SCAN_DIRS = ("src", "benchmarks", "tests")

#: counter("name") / gauge(f"...") / histogram('...') / timer("...")
CALL_RE = re.compile(
    r"\b(?:counter|gauge|histogram|timer)\(\s*(f?)([\"'])((?:[^\"'\\]|\\.)*?)\2"
)
#: One literal segment of a metric name.
SEGMENT_RE = re.compile(r"^[a-z][a-z0-9_]*$")
#: An f-string placeholder (may itself contain dots: ``{self.name}``).
PLACEHOLDER_RE = re.compile(r"\{[^{}]+\}")
_WILDCARD = "\x00"

#: Files whose *test fixtures* intentionally contain invalid names.
EXEMPT = {"tests/test_obs_metrics.py", "tests/test_obs_trace.py"}


def check_name(name: str, is_fstring: bool) -> bool:
    """True when the name follows the convention (placeholders wildcard)."""
    if is_fstring:
        # Collapse each {expr} to an opaque wildcard before splitting, so a
        # dotted expression inside the braces doesn't create fake segments.
        name = PLACEHOLDER_RE.sub(_WILDCARD, name)
    segments = name.split(".")
    if len(segments) < 3:
        return False
    for segment in segments:
        if is_fstring and segment == _WILDCARD:
            continue
        if not SEGMENT_RE.match(segment):
            return False
    return True


#: The human-maintained metric catalog every src/ metric must appear in.
CATALOG_PATH = "docs/observability.md"
#: Backticked names in the catalog: segments are lowercase literals or
#: ``<placeholder>`` wildcards.
CATALOG_NAME_RE = re.compile(
    r"`((?:[a-z][a-z0-9_]*|<[a-z_]+>)(?:\.(?:[a-z][a-z0-9_]*|<[a-z_]+>)){2,})`"
)


def catalog_names() -> list:
    """Documented metric names as segment tuples (wildcards = None)."""
    text = (REPO_ROOT / CATALOG_PATH).read_text(encoding="utf-8")
    names = []
    for match in CATALOG_NAME_RE.finditer(text):
        segments = tuple(
            None if segment.startswith("<") else segment
            for segment in match.group(1).split(".")
        )
        names.append(segments)
    return names


def in_catalog(name: str, is_fstring: bool, catalog: list) -> bool:
    """True when a src/ metric name matches a documented entry."""
    if is_fstring:
        name = PLACEHOLDER_RE.sub(_WILDCARD, name)
    segments = name.split(".")
    for documented in catalog:
        if len(documented) != len(segments):
            continue
        if all(
            doc is None or src == _WILDCARD or doc == src
            for doc, src in zip(documented, segments)
        ):
            return True
    return False


def scan_file(path: Path, catalog=None) -> list:
    violations = []
    text = path.read_text(encoding="utf-8")
    for match in CALL_RE.finditer(text):
        is_fstring, name = bool(match.group(1)), match.group(3)
        line = text.count("\n", 0, match.start()) + 1
        if not check_name(name, is_fstring):
            violations.append((path, line, name, "bad segment shape"))
        elif catalog is not None and not in_catalog(name, is_fstring, catalog):
            violations.append(
                (path, line, name, f"not documented in {CATALOG_PATH}")
            )
    return violations


def main() -> int:
    violations = []
    catalog = catalog_names()
    for directory in SCAN_DIRS:
        root = REPO_ROOT / directory
        if not root.is_dir():
            continue
        for path in sorted(root.rglob("*.py")):
            if str(path.relative_to(REPO_ROOT)) in EXEMPT:
                continue
            # Only src/ metrics must be catalogued; tests and benches may
            # mint throwaway names, which still must follow the shape.
            violations.extend(
                scan_file(path, catalog if directory == "src" else None)
            )
    if violations:
        print("metric-name violations:")
        for path, line, name, reason in violations:
            print(f"  {path.relative_to(REPO_ROOT)}:{line}: {name!r} ({reason})")
        return 1
    print(
        "check_metric_names: all metric names follow stage.component.metric "
        "and src/ names are catalogued"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
