#!/usr/bin/env python
"""Related-work recommendation for a draft abstract.

A second application of the paradigm's pre-processing: given text that is
*not in the corpus* (a draft abstract), classify it into ontology
contexts and recommend each context's prestigious, similar papers --
a reading list generator.

Run:  python examples/related_work_recommender.py
"""

from repro import build_demo_pipeline
from repro.core.recommend import RelatedWorkRecommender


def main() -> None:
    pipeline = build_demo_pipeline(seed=29, n_papers=700, n_terms=120)

    recommender = RelatedWorkRecommender(
        pipeline.text_paper_set,
        pipeline.prestige("text", "text"),
        pipeline.vectors,
        pipeline.representatives,
    )

    # Fake "draft abstract": paraphrase a real paper's topic without
    # copying it, the way a draft would read.  (With real data, paste your
    # abstract here.)
    term_id = pipeline.ontology.terms_at_level(4)[2]
    term = pipeline.ontology.term(term_id)
    jargon = []
    for context in pipeline.text_paper_set:
        if context.term_id == term_id and context.training_paper_ids:
            paper = pipeline.corpus.paper(context.training_paper_ids[0])
            jargon = paper.title.split()[:6]
            break
    draft = (
        f"in this draft we investigate {term.name.lower()} with new assays, "
        f"building on observations about {' '.join(jargon)}"
    )
    print(f"draft abstract:\n  {draft}\n")

    matches = recommender.classify(draft, max_contexts=3)
    print("classified into contexts:")
    for match in matches:
        matched_term = pipeline.ontology.term(match.context_id)
        print(f"  {match.similarity:.3f}  {matched_term.name}")

    print("\nrecommended reading:")
    for rec in recommender.recommend(draft, limit=6):
        paper = pipeline.corpus.paper(rec.paper_id)
        print(
            f"  {rec.score:.3f} (prestige {rec.prestige:.2f}, "
            f"similarity {rec.similarity:.2f})  [{rec.paper_id}] "
            f"{paper.title[:55]}"
        )


if __name__ == "__main__":
    main()
