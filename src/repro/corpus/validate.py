"""Corpus linting for bring-your-own-data users.

Real parsed bibliographies are messy; feeding one into the pipeline with
silent defects (text-less papers, reference lists that resolve nowhere,
suspicious years) produces confusing downstream behaviour.
:func:`validate_corpus` inspects a corpus and returns a structured report
of findings, each tagged with a severity:

- ``error``   -- the pipeline will misbehave (e.g. a paper with no text
  at all can never be retrieved or vectorised);
- ``warning`` -- results will be degraded (mostly-dangling references,
  missing authors, out-of-range years).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.corpus.corpus import Corpus


@dataclass(frozen=True)
class Finding:
    """One validation finding."""

    severity: str  # "error" | "warning"
    code: str
    paper_id: str
    message: str


@dataclass
class ValidationReport:
    """All findings plus corpus-level statistics."""

    findings: List[Finding] = field(default_factory=list)
    n_papers: int = 0
    dangling_reference_ratio: float = 0.0

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def ok(self) -> bool:
        """True when no error-severity findings exist."""
        return not self.errors

    def by_code(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return counts

    def summary(self) -> str:
        lines = [
            f"validated {self.n_papers} papers: "
            f"{len(self.errors)} errors, {len(self.warnings)} warnings",
            f"dangling references: {self.dangling_reference_ratio:.1%}",
        ]
        for code, count in sorted(self.by_code().items()):
            lines.append(f"  {code}: {count}")
        return "\n".join(lines)


#: Plausible publication-year guard rails.
YEAR_RANGE: Tuple[int, int] = (1800, 2100)


def validate_corpus(corpus: Corpus) -> ValidationReport:
    """Lint ``corpus``; see module docstring for the severity model."""
    report = ValidationReport(n_papers=len(corpus))
    total_references = 0
    total_dangling = 0
    for paper in corpus:
        if not paper.all_text().strip():
            report.findings.append(
                Finding(
                    "error",
                    "no-text",
                    paper.paper_id,
                    "paper has no text in any section; it can never be "
                    "retrieved or vectorised",
                )
            )
        elif not paper.title.strip():
            report.findings.append(
                Finding(
                    "warning",
                    "no-title",
                    paper.paper_id,
                    "paper has no title",
                )
            )
        if not paper.authors:
            report.findings.append(
                Finding(
                    "warning",
                    "no-authors",
                    paper.paper_id,
                    "paper has no authors; author-overlap similarity is 0",
                )
            )
        if len(set(paper.authors)) != len(paper.authors):
            report.findings.append(
                Finding(
                    "warning",
                    "duplicate-authors",
                    paper.paper_id,
                    "author list contains duplicates",
                )
            )
        if not YEAR_RANGE[0] <= paper.year <= YEAR_RANGE[1]:
            report.findings.append(
                Finding(
                    "warning",
                    "implausible-year",
                    paper.paper_id,
                    f"year {paper.year} outside {YEAR_RANGE}",
                )
            )
        n_refs = len(paper.references)
        total_references += n_refs
        if n_refs:
            resolvable = len(corpus.references_of(paper.paper_id))
            dangling = n_refs - resolvable
            total_dangling += dangling
            if resolvable == 0:
                report.findings.append(
                    Finding(
                        "warning",
                        "all-references-dangling",
                        paper.paper_id,
                        f"none of {n_refs} references resolve within the "
                        "corpus; the paper is isolated in the citation graph",
                    )
                )
        if paper.paper_id in paper.references:
            report.findings.append(
                Finding(
                    "warning",
                    "self-reference",
                    paper.paper_id,
                    "paper lists itself in its reference list",
                )
            )
    report.dangling_reference_ratio = (
        total_dangling / total_references if total_references else 0.0
    )
    return report
