"""The workspace manifest: one JSON file describing every built artifact.

``manifest.json`` sits at the workspace root and records, per artifact,
the file it lives in, the content fingerprint it was built from, its
schema version, dependency edges, and build cost.  Freshness checks
compare manifest fingerprints against recomputed ones -- the manifest is
the *only* state the builder trusts between runs.

Schema (``repro/workspace-manifest/v1``)::

    {
      "format": "repro/workspace-manifest/v1",
      "inputs": {"corpus": "<sha256>", "ontology": "...", "training": "..."},
      "artifacts": {
        "<name>": {
          "file": "<name>.json",
          "fingerprint": "<sha256>",
          "schema_version": 1,
          "deps": ["..."],
          "built_at": 1754000000.0,
          "wall_seconds": 1.234,
          "size_bytes": 56789
        }
      }
    }

``tools/check_workspace_manifest.py`` validates the same schema from the
command line via :func:`validate_manifest_payload`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

PathLike = Union[str, Path]

MANIFEST_FORMAT = "repro/workspace-manifest/v1"
MANIFEST_FILE = "manifest.json"

#: Required per-artifact entry fields and their JSON types.
_ENTRY_FIELDS: Tuple[Tuple[str, type], ...] = (
    ("file", str),
    ("fingerprint", str),
    ("schema_version", int),
    ("deps", list),
    ("built_at", float),
    ("wall_seconds", float),
    ("size_bytes", int),
)


@dataclass(frozen=True)
class ManifestEntry:
    """Manifest record of one built artifact."""

    file: str
    fingerprint: str
    schema_version: int
    deps: List[str]
    built_at: float
    wall_seconds: float
    size_bytes: int


def validate_manifest_payload(payload: object, origin: str = "manifest") -> Dict:
    """Validate a parsed manifest; return it or raise ``ValueError``.

    Checks the format tag, the input-digest block, and that every
    artifact entry carries every required field with the right type.
    Registry-level checks (known names, codec coverage) live in
    ``tools/check_workspace_manifest.py`` so this stays import-light.
    """
    if not isinstance(payload, dict):
        raise ValueError(f"{origin}: manifest must be a JSON object")
    if payload.get("format") != MANIFEST_FORMAT:
        raise ValueError(
            f"{origin}: expected format {MANIFEST_FORMAT!r}, "
            f"found {payload.get('format')!r}"
        )
    inputs = payload.get("inputs")
    if not isinstance(inputs, dict) or set(inputs) != {
        "corpus", "ontology", "training",
    }:
        raise ValueError(
            f"{origin}: 'inputs' must map exactly corpus/ontology/training "
            "to digests"
        )
    artifacts = payload.get("artifacts")
    if not isinstance(artifacts, dict):
        raise ValueError(f"{origin}: 'artifacts' must be a JSON object")
    for name, entry in artifacts.items():
        if not isinstance(entry, dict):
            raise ValueError(f"{origin}: artifact {name!r} entry must be an object")
        for fieldname, expected in _ENTRY_FIELDS:
            if fieldname not in entry:
                raise ValueError(
                    f"{origin}: artifact {name!r} is missing {fieldname!r}"
                )
            value = entry[fieldname]
            # ints are acceptable where floats are expected (JSON 1 vs 1.0).
            if expected is float and isinstance(value, int):
                continue
            if not isinstance(value, expected):
                raise ValueError(
                    f"{origin}: artifact {name!r} field {fieldname!r} must be "
                    f"{expected.__name__}, got {type(value).__name__}"
                )
    return payload


def read_manifest(directory: PathLike) -> Optional[Dict[str, object]]:
    """Load and validate ``manifest.json`` from ``directory``.

    Returns None when the file does not exist (an unbuilt workspace);
    corrupt or invalid manifests raise ``ValueError`` with the path.
    """
    path = Path(directory) / MANIFEST_FILE
    if not path.exists():
        return None
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as error:
            raise ValueError(f"{path}: corrupt JSON ({error})") from error
    return validate_manifest_payload(payload, origin=str(path))


def write_manifest(
    directory: PathLike,
    inputs: Dict[str, str],
    entries: Dict[str, ManifestEntry],
) -> Path:
    """Write ``manifest.json`` atomically-ish (write then replace)."""
    path = Path(directory) / MANIFEST_FILE
    payload = {
        "format": MANIFEST_FORMAT,
        "inputs": dict(inputs),
        "artifacts": {name: asdict(entry) for name, entry in sorted(entries.items())},
    }
    tmp = path.with_suffix(".json.tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    tmp.replace(path)
    return path


def entries_from_payload(payload: Dict[str, object]) -> Dict[str, ManifestEntry]:
    """Typed entries from a validated manifest payload."""
    return {
        name: ManifestEntry(
            file=raw["file"],
            fingerprint=raw["fingerprint"],
            schema_version=int(raw["schema_version"]),
            deps=list(raw["deps"]),
            built_at=float(raw["built_at"]),
            wall_seconds=float(raw["wall_seconds"]),
            size_bytes=int(raw["size_bytes"]),
        )
        for name, raw in payload["artifacts"].items()
    }
