"""Exposition endpoint: Prometheus text rendering and the HTTP routes.

Unit coverage of :mod:`repro.obs.prom` (name flattening, the text
format) plus a live :class:`~repro.obs.server.ExpositionServer` bound to
an ephemeral port and scraped with urllib -- no third-party client, the
same way Prometheus itself would hit it.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import configure_telemetry, get_registry, prom_name, render_prometheus
from repro.obs.server import ExpositionServer


class TestPromName:
    def test_dots_become_underscores(self):
        assert prom_name("search.run.latency") == "search_run_latency"

    def test_dashes_become_underscores(self):
        assert prom_name("search-p95.latency.x") == "search_p95_latency_x"

    def test_invalid_leading_char_handled(self):
        name = prom_name("1weird.name")
        assert name[0] not in "0123456789"


class TestRenderPrometheus:
    def test_counters_get_total_suffix(self):
        registry = get_registry()
        registry.counter("search.request.queries").inc(3)
        text = render_prometheus(registry.snapshot())
        assert "# TYPE search_request_queries_total counter" in text
        assert "search_request_queries_total 3" in text
        assert "search.request.queries" in text  # dotted original in HELP

    def test_gauges_rendered_plain(self):
        get_registry().gauge("serving.view.revision").set(7)
        text = render_prometheus(get_registry().snapshot())
        assert "# TYPE serving_view_revision gauge" in text
        assert "serving_view_revision 7" in text

    def test_histograms_rendered_as_summaries_with_quantiles(self):
        histogram = get_registry().histogram("search.run.latency")
        for value in (0.1, 0.2, 0.3):
            histogram.observe(value)
        text = render_prometheus(get_registry().snapshot())
        assert "# TYPE search_run_latency summary" in text
        for quantile in ("0.5", "0.95", "0.99"):
            assert f'search_run_latency{{quantile="{quantile}"}}' in text
        assert "search_run_latency_count 3" in text
        assert "search_run_latency_sum" in text

    def test_empty_histogram_emits_no_quantiles(self):
        get_registry().histogram("search.run.latency")
        text = render_prometheus(get_registry().snapshot())
        assert "quantile=" not in text
        assert "search_run_latency_count 0" in text

    def test_render_under_concurrent_metric_updates(self):
        """Scraping while writers race must neither raise nor emit
        malformed 0.0.4 text (every sample line parses as name value)."""
        import re
        import threading

        registry = get_registry()
        stop = threading.Event()
        failures = []

        def writer(index):
            function = f"fn{index}"
            counter = registry.counter("search.request.queries")
            gauge = registry.gauge("serving.view.revision")
            histogram = registry.histogram(
                f"search.shadow.{function}.jaccard"
            )
            value = 0
            while not stop.is_set():
                counter.inc()
                gauge.set(value)
                histogram.observe((value % 100) / 100.0)
                value += 1

        sample_re = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9eE.+-]+$"
        )
        writers = [
            threading.Thread(target=writer, args=(i,), daemon=True)
            for i in range(4)
        ]
        for thread in writers:
            thread.start()
        try:
            for _ in range(50):
                try:
                    text = render_prometheus(registry.snapshot())
                except Exception as error:  # noqa: BLE001 - the assertion
                    failures.append(f"render raised: {error!r}")
                    break
                for line in text.splitlines():
                    if not line or line.startswith("#"):
                        continue
                    if not sample_re.match(line):
                        failures.append(f"malformed sample line: {line!r}")
        finally:
            stop.set()
            for thread in writers:
                thread.join(timeout=5)
        assert not failures, failures[:5]


def _get(server, path):
    url = f"http://{server.host}:{server.port}{path}"
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers, response.read().decode()


@pytest.fixture
def server():
    with ExpositionServer(port=0) as live:
        yield live


class TestRoutes:
    def test_metrics_route_serves_prometheus_text(self, server):
        get_registry().counter("search.request.queries").inc()
        status, headers, body = _get(server, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "version=0.0.4" in headers["Content-Type"]
        assert "search_request_queries_total 1" in body

    def test_health_route(self, server):
        status, headers, body = _get(server, "/health")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["uptime_s"] >= 0.0

    def test_slo_route_reflects_live_telemetry(self, server):
        telemetry = configure_telemetry(enabled=True, sample_rate=0.0)
        with telemetry.request("search", query="q"):
            pass
        _, _, body = _get(server, "/slo")
        statuses = {s["name"]: s for s in json.loads(body)["slo"]}
        assert statuses["search-errors"]["total"] == 1
        assert statuses["search-errors"]["met"] is True

    def test_slowlog_route(self, server):
        telemetry = configure_telemetry(enabled=True, sample_rate=1.0)
        with telemetry.request("search", query="captured"):
            pass
        _, _, body = _get(server, "/slowlog")
        (entry,) = json.loads(body)["slowlog"]
        assert entry["query"] == "captured"
        assert entry["spans"]["name"] == "request.search"

    def test_unknown_route_404s(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server, "/nope")
        assert excinfo.value.code == 404
        assert "no route" in json.loads(excinfo.value.read().decode())["error"]

    def test_trailing_slash_and_query_string_normalised(self, server):
        status, _, _ = _get(server, "/health/?verbose=1")
        assert status == 200


class TestCollectorsAndHealthInfo:
    def test_collectors_run_on_every_scrape(self):
        calls = []

        def collector():
            calls.append(True)
            get_registry().gauge("serving.view.age_seconds").set(1.0)

        with ExpositionServer(port=0, collectors=[collector]) as server:
            _, _, body = _get(server, "/metrics")
            _get(server, "/health")
        assert len(calls) == 2
        assert "serving_view_age_seconds 1" in body

    def test_failing_collector_does_not_break_scrapes(self):
        def bad():
            raise RuntimeError("collector exploded")

        with ExpositionServer(port=0, collectors=[bad]) as server:
            status, _, _ = _get(server, "/metrics")
        assert status == 200

    def test_health_info_merged_and_degraded_on_failure(self):
        with ExpositionServer(
            port=0, health_info=lambda: {"papers": 42}
        ) as server:
            payload = json.loads(_get(server, "/health")[2])
        assert payload["papers"] == 42 and payload["status"] == "ok"

        def broken():
            raise KeyError("view gone")

        with ExpositionServer(port=0, health_info=broken) as server:
            payload = json.loads(_get(server, "/health")[2])
        assert payload["status"] == "degraded"
        assert "KeyError" in payload["error"]


class TestLifecycle:
    def test_ephemeral_port_bound_and_stop_releases(self):
        server = ExpositionServer(port=0).start()
        port = server.port
        assert port != 0
        server.stop()
        # The port is released: a fresh server can bind it immediately.
        rebound = ExpositionServer(port=port).start()
        assert rebound.port == port
        rebound.stop()

    def test_double_start_rejected(self):
        with ExpositionServer(port=0) as server:
            with pytest.raises(RuntimeError, match="already started"):
                server.start()

    def test_stop_start_cycles_on_a_fixed_port_never_eaddrinuse(self):
        """Repeated restarts on one port must not trip over the previous
        listener's TIME_WAIT socket -- allow_reuse_address is applied
        before bind (regression: a restart used to be able to fail with
        EADDRINUSE depending on close timing)."""
        first = ExpositionServer(port=0).start()
        port = first.port
        first.stop()
        for _ in range(5):
            server = ExpositionServer(port=port).start()
            try:
                status, _, _ = _get(server, "/health")
                assert status == 200
                assert server.port == port
            finally:
                server.stop()

    def test_port_zero_resolved_before_start(self):
        """The bound port is readable from construction on -- callers
        (CLI banner, tests) never see the literal 0 they asked for."""
        server = ExpositionServer(port=0)
        try:
            assert server.port != 0
            assert server.host == "127.0.0.1"
        finally:
            server.stop()

    def test_bind_failure_raises_and_releases(self):
        with ExpositionServer(port=0) as server:
            # The same (host, port) with SO_REUSEADDR still refuses a
            # second *live* listener; construction must raise OSError
            # (not hang or half-bind) and close its socket.
            with pytest.raises(OSError):
                ExpositionServer(port=server.port)
            status, _, _ = _get(server, "/health")
            assert status == 200  # the original listener is unharmed
