"""Property-based tests for data-generation invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.corpus_gen import CorpusGenerator
from repro.datagen.ontology_gen import OntologyGenerator

params = st.tuples(
    st.integers(min_value=5, max_value=60),   # n_papers
    st.integers(min_value=3, max_value=25),   # n_terms
    st.integers(min_value=0, max_value=50),   # seed
)


class TestCorpusGenerationInvariants:
    @given(params)
    @settings(max_examples=15, deadline=None)
    def test_structural_invariants(self, config):
        n_papers, n_terms, seed = config
        generator = CorpusGenerator(
            n_papers=n_papers,
            ontology_generator=OntologyGenerator(n_terms=n_terms, max_depth=5),
        )
        dataset = generator.generate(seed=seed)
        corpus = dataset.corpus
        assert len(corpus) == n_papers
        assert len(dataset.ontology) == n_terms
        ids = corpus.paper_ids()
        for paper in corpus:
            own_index = int(paper.paper_id[1:])
            # References point strictly backwards and resolve in-corpus.
            for reference in paper.references:
                assert int(reference[1:]) < own_index
                assert reference in corpus
            # True contexts exist in the ontology; primary term recorded.
            assert paper.true_context_ids
            assert all(t in dataset.ontology for t in paper.true_context_ids)
            assert (
                dataset.primary_term_of[paper.paper_id]
                == paper.true_context_ids[0]
            )
            # Authors deduplicated.
            assert len(set(paper.authors)) == len(paper.authors)
        # Training papers are corpus members with matching primary term,
        # and reviews never train.
        for term_id, training in dataset.training_papers.items():
            for paper_id in training:
                assert paper_id in corpus
                assert dataset.primary_term_of[paper_id] == term_id
                assert paper_id not in dataset.review_paper_ids

    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=10, deadline=None)
    def test_seed_determinism(self, seed):
        generator = CorpusGenerator(
            n_papers=20,
            ontology_generator=OntologyGenerator(n_terms=10, max_depth=4),
        )
        a = generator.generate(seed=seed)
        b = generator.generate(seed=seed)
        assert [p.to_dict() for p in a.corpus] == [p.to_dict() for p in b.corpus]
        assert a.training_papers == b.training_papers
        assert a.review_paper_ids == b.review_paper_ids
