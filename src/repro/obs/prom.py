"""Prometheus text exposition (version 0.0.4) over a metrics snapshot.

Pure rendering: :func:`render_prometheus` turns the plain-dict snapshot
from :meth:`repro.obs.metrics.MetricsRegistry.snapshot` into the text
format a Prometheus scraper ingests, so the HTTP endpoint
(:mod:`repro.obs.server`), the CLI, and the tests all share one code
path.

Mapping choices, documented in ``docs/observability.md``:

- dotted names become underscore names (``search.run.latency`` ->
  ``search_run_latency``); the original dotted name is preserved in the
  ``# HELP`` line so the docs catalog stays searchable from a scrape;
- counters are exported with the conventional ``_total`` suffix;
- histograms are exported as Prometheus *summaries*: ``quantile`` labels
  for p50/p95/p99 (nearest-rank over the bounded sample ring) plus exact
  ``_sum`` and ``_count`` -- percentiles are computed process-side, so
  no bucket boundaries need declaring up front.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List

__all__ = ["prom_name", "render_prometheus"]

_NAME_OK_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def prom_name(name: str) -> str:
    """Dotted metric name -> valid Prometheus metric name."""
    flat = name.replace(".", "_").replace("-", "_")
    if not _NAME_OK_RE.match(flat):
        flat = re.sub(r"[^a-zA-Z0-9_:]", "_", flat)
        if not flat or not _NAME_OK_RE.match(flat):
            flat = f"_{flat}"
    return flat


def _format_value(value: Any) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prometheus(snapshot: Dict[str, Dict]) -> str:
    """Render a registry snapshot as Prometheus 0.0.4 text exposition."""
    lines: List[str] = []
    for name, value in snapshot.get("counters", {}).items():
        flat = prom_name(name)
        lines.append(f"# HELP {flat}_total counter {name}")
        lines.append(f"# TYPE {flat}_total counter")
        lines.append(f"{flat}_total {_format_value(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        if value is None:
            # A gauge with nothing observed yet (e.g. a result-cache
            # hit rate before the first lookup) has no meaningful
            # sample; exporting NaN trips strict scrapers, so skip it.
            continue
        flat = prom_name(name)
        lines.append(f"# HELP {flat} gauge {name}")
        lines.append(f"# TYPE {flat} gauge")
        lines.append(f"{flat} {_format_value(value)}")
    for name, summary in snapshot.get("histograms", {}).items():
        flat = prom_name(name)
        lines.append(f"# HELP {flat} summary {name}")
        lines.append(f"# TYPE {flat} summary")
        count = summary.get("count") or 0
        if count:
            for quantile, key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
                lines.append(
                    f'{flat}{{quantile="{quantile}"}} '
                    f"{_format_value(summary.get(key))}"
                )
        lines.append(f"{flat}_sum {_format_value(summary.get('sum', 0.0))}")
        lines.append(f"{flat}_count {count}")
    return "\n".join(lines) + ("\n" if lines else "")
