"""Unit tests for the two context paper set builders."""

import pytest

from repro.core.assignment import PatternContextAssigner, TextContextAssigner
from repro.core.vectors import PaperVectorStore
from repro.index.inverted import InvertedIndex


@pytest.fixture(scope="module")
def index(request):
    return InvertedIndex().index_corpus(request.getfixturevalue("tiny_corpus"))


@pytest.fixture(scope="module")
def vectors(request, index):
    return PaperVectorStore(request.getfixturevalue("tiny_corpus"), index.analyzer)


class TestTextContextAssigner:
    @pytest.fixture(scope="class")
    def paper_set(self, request, index, vectors):
        assigner = TextContextAssigner(
            request.getfixturevalue("tiny_corpus"),
            request.getfixturevalue("tiny_ontology"),
            vectors,
            index,
            similarity_threshold=0.15,
        )
        built = assigner.build(request.getfixturevalue("tiny_training"))
        # stash the assigner for representative checks
        request.cls._assigner = assigner
        return built

    def test_only_contexts_with_training(self, paper_set):
        assert set(paper_set.context_ids()) == {"met", "sig", "glu"}

    def test_training_papers_always_members(self, paper_set):
        assert "M1" in paper_set.context("met")
        assert "M2" in paper_set.context("met")
        assert "S1" in paper_set.context("sig")

    def test_topical_papers_join(self, paper_set):
        # M3 is clearly metabolic and should clear a 0.15 bar.
        assert "M3" in paper_set.context("met")

    def test_off_topic_papers_excluded(self, paper_set):
        assert "X1" not in paper_set.context("met")
        assert "X1" not in paper_set.context("sig")

    def test_representatives_recorded(self, paper_set):
        reps = self._assigner.representatives
        assert set(reps) == {"met", "sig", "glu"}
        assert reps["glu"] == "M1"
        assert reps["sig"] == "S1"

    def test_high_threshold_shrinks_contexts(self, request, index, vectors):
        strict = TextContextAssigner(
            request.getfixturevalue("tiny_corpus"),
            request.getfixturevalue("tiny_ontology"),
            vectors,
            index,
            similarity_threshold=0.99,
        )
        built = strict.build(request.getfixturevalue("tiny_training"))
        # Only training papers survive a near-exact threshold.
        assert set(built.context("met").paper_ids) == {"M1", "M2"}


class TestPatternContextAssigner:
    @pytest.fixture(scope="class")
    def assigner(self, request, index):
        return PatternContextAssigner(
            request.getfixturevalue("tiny_corpus"),
            request.getfixturevalue("tiny_ontology"),
            index,
            max_middle_coverage=0.5,
        )

    @pytest.fixture(scope="class")
    def paper_set(self, request, assigner):
        return assigner.build(request.getfixturevalue("tiny_training"))

    def test_pattern_sets_populated(self, assigner, paper_set):
        assert "met" in assigner.pattern_sets
        assert len(assigner.pattern_sets["met"]) > 0

    def test_topical_matching(self, paper_set):
        met = paper_set.context("met")
        assert "M1" in met and "M2" in met
        assert "X1" not in met

    def test_descendant_rollup(self, paper_set):
        # Papers matched by 'glu' must appear in ancestor 'met'.
        glu = set(paper_set.context("glu").paper_ids)
        met = set(paper_set.context("met").paper_ids)
        if paper_set.context("glu").inherited_from is None:
            assert glu <= met

    def test_root_contains_everything_matched(self, paper_set):
        if "root" in paper_set:
            root = set(paper_set.context("root").paper_ids)
            for context in paper_set:
                if context.inherited_from is None:
                    assert set(context.paper_ids) <= root

    def test_ancestor_fallback_decay(self, request, index):
        """A context with no training and no matches inherits with decay."""
        assigner = PatternContextAssigner(
            request.getfixturevalue("tiny_corpus"),
            request.getfixturevalue("tiny_ontology"),
            index,
            max_middle_coverage=0.5,
        )
        # Only 'met' gets training; 'glu' (child of met) has none.
        paper_set = assigner.build({"met": ["M1", "M2"]})
        if "glu" in paper_set:
            glu = paper_set.context("glu")
            assert glu.inherited_from in {"met", "root"} or glu.inherited_from is None
            if glu.inherited_from is not None:
                assert 0.0 <= glu.decay <= 1.0
                assert set(glu.paper_ids) == set(
                    paper_set.context(glu.inherited_from).paper_ids
                )

    def test_coverage_cap_blocks_ubiquitous_middles(self, request, index):
        strict = PatternContextAssigner(
            request.getfixturevalue("tiny_corpus"),
            request.getfixturevalue("tiny_ontology"),
            index,
            max_middle_coverage=0.01,  # nothing passes
        )
        paper_set = strict.build(request.getfixturevalue("tiny_training"))
        # With no matches anywhere, fallback finds no non-empty ancestor
        # either, so the set is empty.
        assert len(paper_set) == 0
