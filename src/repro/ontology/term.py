"""The ontology term record."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.text.tokenize import tokenize


@dataclass(frozen=True)
class Term:
    """One ontology term (a *context* in the paper's vocabulary).

    Attributes
    ----------
    term_id:
        Stable identifier, e.g. ``GO:0003700`` or a synthetic ``T:000123``.
    name:
        Human-readable term name, e.g. ``"RNA polymerase II transcription
        factor activity"``.  Its words seed pattern construction.
    namespace:
        Ontology namespace/aspect (e.g. ``biological_process``).  Synthetic
        ontologies use a single namespace.
    parent_ids:
        ``is_a`` parents.  Empty for root terms.  Stored on the term so a
        term list is self-describing; the :class:`~repro.ontology.Ontology`
        builds the reverse (children) maps.
    """

    term_id: str
    name: str
    namespace: str = "biological_process"
    parent_ids: Tuple[str, ...] = field(default_factory=tuple)

    def name_words(self, lowercase: bool = True) -> Tuple[str, ...]:
        """Tokenised term-name words (the pattern seeds of section 3.3).

        >>> Term("GO:1", "DNA repair").name_words()
        ('dna', 'repair')
        """
        return tuple(tokenize(self.name, lowercase=lowercase))

    def __str__(self) -> str:
        return f"{self.term_id} ({self.name})"
