"""The ``SearchBackend`` protocol: what every index backend must serve.

The keyword search engine, the serving substrate, and the workspace
codecs talk to this interface and never to a concrete index class.  A
backend is any object that answers postings / document-frequency /
term-frequency / forward-index questions about one immutable-ish corpus
snapshot; *how* the postings are held (Python dataclasses in RAM, a
packed binary file behind ``mmap``, a remote service...) is the
backend's business.

Contracts that keep rankings byte-identical across backends:

- :meth:`postings` returns the postings of a term **in indexing order**.
  Scoring sums float contributions in postings order, so two backends
  that return the same postings in the same order produce bit-identical
  scores.  The returned sequence must be *immutable from the caller's
  point of view* -- backends are free to return a shared cached tuple,
  and callers must never mutate it.
- :meth:`vocabulary` returns a **stable snapshot**, never a live view of
  internal state.  Callers may add or remove papers mid-iteration (on
  mutable backends) without a ``RuntimeError``; backends must therefore
  materialise the term list (e.g. a tuple) rather than hand out
  ``dict.keys()``.
- :attr:`revision` is a monotonic mutation counter.  Every observable
  change to the backend's contents bumps it; derived caches (per-term
  contribution caches, BM25 length tables) key on it.  Read-only
  backends report the revision frozen into their artifact.

Positional data (term positions, phrase queries) is an *optional
capability*: backends without it simply do not grow the
``positions``/``phrase_frequency``/``papers_containing_phrase`` methods,
and the search engine degrades phrase handling accordingly (it already
feature-detects via ``getattr``).
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, List, Mapping, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.corpus.paper import Section
    from repro.index.inverted import Posting
    from repro.text.analyze import Analyzer


class SearchBackend(abc.ABC):
    """Abstract interface served by every registered index backend.

    Concrete backends either subclass this (the built-ins do) or simply
    implement the same surface -- the serving layers only ever
    duck-type.  See the module docstring for the ordering, snapshot, and
    revision contracts that keep rankings identical across backends.
    """

    #: The analyzer whose term pipeline produced the indexed terms;
    #: queries must be analysed with the same one.
    analyzer: "Analyzer"

    #: Document-level mutation is an *optional capability*.  Backends that
    #: set this True grow ``add_document(paper)`` / ``remove_document
    #: (paper_id)`` which update postings in place while preserving the
    #: postings-order contract and bumping :attr:`revision`.  Backends
    #: that leave it False (read-optimised formats like the mmap ondisk
    #: backend) are handled by the documented rebuild-on-mutate fallback:
    #: the substrate rebuilds them from the mutated corpus via their
    #: registered ``build`` hook.
    supports_mutation: bool = False

    # -- corpus-level facts --------------------------------------------------------

    @property
    @abc.abstractmethod
    def n_papers(self) -> int:
        """Number of indexed papers."""

    @property
    @abc.abstractmethod
    def revision(self) -> int:
        """Monotonic mutation counter (see module docstring)."""

    @property
    @abc.abstractmethod
    def n_terms(self) -> int:
        """Number of distinct indexed terms."""

    # -- postings ------------------------------------------------------------------

    @abc.abstractmethod
    def postings(self, term: str) -> Sequence["Posting"]:
        """Postings of ``term`` in indexing order (empty if unseen).

        The result is an immutable snapshot the backend may share across
        calls; callers must not mutate it.
        """

    @abc.abstractmethod
    def document_frequency(self, term: str) -> int:
        """Number of papers containing ``term`` in any section."""

    @abc.abstractmethod
    def papers_containing(self, term: str) -> List[str]:
        """Distinct paper ids containing ``term``, in indexing order."""

    # -- forward index -------------------------------------------------------------

    @abc.abstractmethod
    def term_frequency(
        self, paper_id: str, term: str, section: Optional["Section"] = None
    ) -> int:
        """Frequency of ``term`` in ``paper_id`` (one section or summed)."""

    @abc.abstractmethod
    def paper_section_terms(
        self, paper_id: str, section: "Section"
    ) -> Mapping[str, int]:
        """Term-count map of one paper section (empty if absent)."""

    # -- vocabulary ----------------------------------------------------------------

    @abc.abstractmethod
    def vocabulary(self) -> Sequence[str]:
        """All indexed terms, as a **stable snapshot** in indexing order.

        Never a live view: iterating the result stays valid across
        concurrent paper adds/removes on mutable backends (those mutate
        the internal tables, not previously returned snapshots).
        """

    @abc.abstractmethod
    def __contains__(self, term: str) -> bool:
        """Whether ``term`` is indexed."""
