"""The HTTP search service: ranking-as-a-service over a ServingView.

:class:`SearchService` mounts the query endpoints on the same listener
as the observability routes it inherits from
:class:`~repro.obs.server.ExpositionServer` (``/metrics``, ``/health``,
``/slo``, ``/slowlog``), so one ``repro serve`` process is scrapeable
and searchable at once:

- ``GET /search``          -- merged context-based rankings
  (``q``, ``score_function``, ``paper_set``, ``top_k``, ``threshold``,
  ``selection_strategy``, repeatable ``context``);
- ``GET /search_grouped``  -- rankings grouped per selected context
  (``q``, ``score_function``, ``paper_set``, ``top_k``,
  ``max_contexts``, ``threshold``);
- ``GET /explain``         -- relevancy decomposition for one
  (``q``, ``paper_id``) pair;
- ``POST /admin/reload``   -- zero-downtime serving-view swap via
  :meth:`~repro.pipeline.Pipeline.refresh`; searches racing the swap
  keep serving from the snapshot they grabbed;
- ``POST /admin/ingest``   -- incremental corpus delta
  (JSON body ``{"add": [...], "remove": [...]}``) applied through
  :meth:`SubstrateStore.apply_delta`, then the same drift-gated view
  swap as a reload (409 + ``?force=1`` on refusal).

Every search endpoint answers through the *pipeline* (result cache,
request telemetry, SLO events included), so an HTTP ranking is
byte-identical to the same :meth:`Pipeline.search` call in process --
the property ``tests/test_serving_service.py`` pins.

**Admission control.**  ``ThreadingHTTPServer`` spawns one thread per
connection; unbounded, a traffic spike turns into unbounded threads all
contending for the GIL and every request slowing down together.  The
:class:`AdmissionController` bounds that: at most ``max_in_flight``
requests execute concurrently, at most ``queue_depth`` more wait their
turn, and everything beyond is shed immediately with ``429`` and a
``Retry-After`` header -- degraded throughput never becomes degraded
latency for the requests that are accepted.  Observability routes are
exempt so a saturated service can still be scraped and health-checked.

Metrics (catalogued in ``docs/observability.md``): per-endpoint latency
histograms ``serving.http.<endpoint>.latency``, counters
``serving.http.{requests,accepted,shed,bad_request}``, gauge
``serving.http.in_flight``.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro import scoring
from repro.core.search import (
    ContextResultGroup,
    RankingExplanation,
    SearchHit,
    SELECTION_STRATEGIES,
)
from repro.obs import get_registry, get_telemetry
from repro.obs.quality import DriftExceeded
from repro.obs.server import ExpositionServer, Response, json_response
from repro.serving.analytics import QueryAnalytics, ShadowScorer

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "BadRequest",
    "SearchService",
    "explanation_to_dict",
    "group_to_dict",
    "hit_to_dict",
]


class AdmissionRejected(Exception):
    """Raised inside the service when admission sheds a request."""

    def __init__(self, retry_after_s: float) -> None:
        super().__init__(
            f"server saturated; retry after {retry_after_s:g}s"
        )
        self.retry_after_s = retry_after_s


class BadRequest(Exception):
    """Raised by parameter parsing; becomes a 400 JSON error."""


class AdmissionController:
    """Bounded concurrency: ``max_in_flight`` running + ``queue_depth`` waiting.

    Two semaphores implement the policy without a dispatcher thread:
    ``_slots`` (capacity ``max_in_flight + queue_depth``) is acquired
    *non-blocking* -- failure means the request is shed before any work
    happens; ``_running`` (capacity ``max_in_flight``) is then acquired
    blocking, so the handler threads beyond the in-flight bound *are*
    the queue, and FIFO-ish draining comes from semaphore wakeup order.
    Sheds and accepts are counted (``serving.http.{shed,accepted}``),
    the running count is exported as ``serving.http.in_flight``.
    """

    def __init__(
        self,
        max_in_flight: int = 8,
        queue_depth: int = 16,
        retry_after_s: float = 1.0,
    ) -> None:
        if max_in_flight < 1:
            raise ValueError(
                f"max_in_flight must be >= 1, got {max_in_flight}"
            )
        if queue_depth < 0:
            raise ValueError(f"queue_depth must be >= 0, got {queue_depth}")
        if retry_after_s <= 0:
            raise ValueError(
                f"retry_after_s must be positive, got {retry_after_s}"
            )
        self.max_in_flight = max_in_flight
        self.queue_depth = queue_depth
        self.retry_after_s = retry_after_s
        self._slots = threading.Semaphore(max_in_flight + queue_depth)
        self._running = threading.Semaphore(max_in_flight)
        self._in_flight = 0
        self._lock = threading.Lock()

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def _track(self, delta: int) -> None:
        with self._lock:
            self._in_flight += delta
            value = self._in_flight
        get_registry().gauge("serving.http.in_flight").set(value)

    @contextmanager
    def admit(self) -> Iterator[None]:
        """Hold one admission slot; raises :class:`AdmissionRejected` when full."""
        registry = get_registry()
        if not self._slots.acquire(blocking=False):
            registry.counter("serving.http.shed").inc()
            raise AdmissionRejected(self.retry_after_s)
        try:
            with self._running:
                registry.counter("serving.http.accepted").inc()
                self._track(+1)
                try:
                    yield
                finally:
                    self._track(-1)
        finally:
            self._slots.release()


# -- canonical JSON shapes (shared by the service and its parity tests) --------------


def hit_to_dict(hit: SearchHit) -> Dict[str, Any]:
    """One merged search result, byte-stable across service and pipeline."""
    return {
        "paper_id": hit.paper_id,
        "context_id": hit.context_id,
        "relevancy": hit.relevancy,
        "prestige": hit.prestige,
        "matching": hit.matching,
    }


def group_to_dict(group: ContextResultGroup) -> Dict[str, Any]:
    return {
        "context_id": group.context_id,
        "selection_strength": group.selection_strength,
        "hits": [hit_to_dict(hit) for hit in group.hits],
    }


def explanation_to_dict(explanation: RankingExplanation) -> Dict[str, Any]:
    return {
        "query": explanation.query,
        "paper_id": explanation.paper_id,
        "matching": explanation.matching,
        "selected_context_ids": list(explanation.selected_context_ids),
        "in_selected_contexts": [
            {"context_id": cid, "prestige": prestige, "relevancy": relevancy}
            for cid, prestige, relevancy in explanation.in_selected_contexts
        ],
        "best_relevancy": explanation.best_relevancy,
        "retrievable": explanation.retrievable,
    }


# -- query-string parsing ------------------------------------------------------------


def _one(
    params: Dict[str, List[str]], name: str, default: Optional[str] = None
) -> Optional[str]:
    values = params.get(name)
    if not values:
        return default
    if len(values) > 1:
        raise BadRequest(f"parameter {name!r} given {len(values)} times")
    return values[0]


def _required(params: Dict[str, List[str]], name: str) -> str:
    value = _one(params, name)
    if value is None or not value.strip():
        raise BadRequest(f"missing required parameter {name!r}")
    return value


def _choice(
    params: Dict[str, List[str]],
    name: str,
    choices: Sequence[str],
    default: str,
) -> str:
    value = _one(params, name, default)
    if value not in choices:
        raise BadRequest(
            f"parameter {name!r} must be one of {tuple(choices)}, "
            f"got {value!r}"
        )
    return value


def _int(
    params: Dict[str, List[str]], name: str, default: int, minimum: int = 1
) -> int:
    raw = _one(params, name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise BadRequest(
            f"parameter {name!r} must be an integer, got {raw!r}"
        ) from None
    if value < minimum:
        raise BadRequest(
            f"parameter {name!r} must be >= {minimum}, got {value}"
        )
    return value


def _float(
    params: Dict[str, List[str]], name: str, default: float
) -> float:
    raw = _one(params, name)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        raise BadRequest(
            f"parameter {name!r} must be a number, got {raw!r}"
        ) from None


class SearchService(ExpositionServer):
    """HTTP search endpoints + admission control over one Pipeline.

    The observability routes of the base class stay mounted (and stay
    *outside* admission control, so health probes and scrapes answer
    even under shed-everything load).  Unless overridden, the gauge
    collector exports the current serving view at every scrape and
    ``/health`` reports the view revision/age and corpus size.
    """

    #: (method, path) -> (endpoint label, admission-controlled?).
    #: ``/ready`` and ``/analytics`` are observability routes: exempt
    #: from admission like the inherited scrape endpoints.
    ROUTES: Dict[Tuple[str, str], Tuple[str, bool]] = {
        ("GET", "/search"): ("search", True),
        ("GET", "/search_grouped"): ("search_grouped", True),
        ("GET", "/explain"): ("explain", True),
        ("GET", "/ready"): ("ready", False),
        ("GET", "/analytics"): ("analytics", False),
        ("POST", "/admin/reload"): ("reload", False),
        ("POST", "/admin/ingest"): ("ingest", False),
    }

    #: Endpoints whose handlers receive the request body as a second
    #: positional argument (the rest keep the ``handler(params)`` shape).
    BODY_ENDPOINTS = frozenset({"ingest"})

    def __init__(
        self,
        pipeline,
        host: str = "127.0.0.1",
        port: int = 8977,
        max_in_flight: int = 8,
        queue_depth: int = 16,
        retry_after_s: float = 1.0,
        collectors: Optional[Sequence[Callable[[], Any]]] = None,
        health_info: Optional[Callable[[], Dict[str, Any]]] = None,
        analytics: Optional[QueryAnalytics] = None,
        shadow_functions: Sequence[str] = (),
        shadow_sample_rate: float = 0.1,
        shadow_k: int = 10,
        shadow_seed: Optional[int] = None,
        ready_max_age_s: Optional[float] = None,
    ) -> None:
        self.pipeline = pipeline
        self.admission = AdmissionController(
            max_in_flight=max_in_flight,
            queue_depth=queue_depth,
            retry_after_s=retry_after_s,
        )
        self.analytics = (
            analytics if analytics is not None else QueryAnalytics()
        )
        self.shadow: Optional[ShadowScorer] = (
            ShadowScorer(
                pipeline,
                shadow_functions,
                sample_rate=shadow_sample_rate,
                k=shadow_k,
                seed=shadow_seed,
            )
            if shadow_functions else None
        )
        self.ready_max_age_s = ready_max_age_s
        if collectors is None:
            collectors = [
                lambda: pipeline.serving_view.export_gauges(),
                self.analytics.export_gauges,
            ]
        if health_info is None:
            health_info = self._default_health_info
        super().__init__(
            host=host, port=port, collectors=collectors,
            health_info=health_info,
        )

    def _default_health_info(self) -> Dict[str, Any]:
        view = self.pipeline.serving_view
        return {
            "view_revision": view.revision,
            "view_age_s": round(view.age_seconds, 3),
            "papers": len(self.pipeline.corpus),
            "in_flight": self.admission.in_flight,
        }

    # -- lifecycle -------------------------------------------------------------------

    def start(self) -> "SearchService":
        super().start()
        # Feed the analytics window from the telemetry finish hook; the
        # listener is idempotent to add and detached again on stop.
        get_telemetry().add_listener(self.analytics.observe)
        if self.shadow is not None:
            self.shadow.start()
        return self

    def stop(self) -> None:
        get_telemetry().remove_listener(self.analytics.observe)
        if self.shadow is not None:
            self.shadow.stop()
        super().stop()

    # -- routing ---------------------------------------------------------------------

    def dispatch(
        self,
        method: str,
        path: str,
        params: Dict[str, List[str]],
        body: Optional[str] = None,
    ) -> Optional[Response]:
        route = self.ROUTES.get((method, path))
        if route is None:
            return super().dispatch(method, path, params, body)
        endpoint, admitted = route
        registry = get_registry()
        registry.counter("serving.http.requests").inc()
        started = time.perf_counter()
        try:
            handler = getattr(self, f"_handle_{endpoint}")
            args = (params, body) if endpoint in self.BODY_ENDPOINTS else (params,)
            if admitted:
                with self.admission.admit():
                    response = handler(*args)
            else:
                response = handler(*args)
        except AdmissionRejected as rejected:
            response = json_response(
                {
                    "error": str(rejected),
                    "retry_after_s": rejected.retry_after_s,
                },
                status=429,
                Retry_After=f"{max(int(-(-rejected.retry_after_s // 1)), 1)}",
            )
        except BadRequest as bad:
            registry.counter("serving.http.bad_request").inc()
            response = json_response({"error": str(bad)}, status=400)
        finally:
            registry.histogram(
                f"serving.http.{endpoint}.latency"
            ).observe(time.perf_counter() - started)
        return response

    # -- endpoint handlers -----------------------------------------------------------

    def _handle_search(self, params: Dict[str, List[str]]) -> Response:
        query = _required(params, "q")
        function = _choice(
            params, "score_function", scoring.function_names(), "text"
        )
        paper_set = _choice(
            params, "paper_set", scoring.PAPER_SET_NAMES, "text"
        )
        strategy = _choice(
            params, "selection_strategy", SELECTION_STRATEGIES, "probe"
        )
        top_k = _int(params, "top_k", default=10)
        threshold = _float(params, "threshold", default=0.0)
        contexts = params.get("context") or None
        view = self.pipeline.serving_view
        hits = self.pipeline.search(
            query,
            function=function,
            paper_set_name=paper_set,
            limit=top_k,
            threshold=threshold,
            selection_strategy=strategy,
            contexts=contexts,
        )
        if self.shadow is not None and contexts is None:
            # Context-restricted searches are skipped: a shadow ranking
            # over *all* contexts would not be comparing like with like.
            self.shadow.offer(
                query=query,
                function=function,
                paper_set=paper_set,
                strategy=strategy,
                threshold=threshold,
                primary_ids=[hit.paper_id for hit in hits],
                view=view,
            )
        return json_response(
            {
                "query": query,
                "score_function": function,
                "paper_set": paper_set,
                "selection_strategy": strategy,
                "top_k": top_k,
                "threshold": threshold,
                "contexts": list(contexts) if contexts else None,
                "count": len(hits),
                "hits": [hit_to_dict(hit) for hit in hits],
            }
        )

    def _handle_search_grouped(self, params: Dict[str, List[str]]) -> Response:
        query = _required(params, "q")
        function = _choice(
            params, "score_function", scoring.function_names(), "text"
        )
        paper_set = _choice(
            params, "paper_set", scoring.PAPER_SET_NAMES, "text"
        )
        strategy = _choice(
            params, "selection_strategy", SELECTION_STRATEGIES, "probe"
        )
        top_k = _int(params, "top_k", default=10)
        max_contexts = _int(params, "max_contexts", default=5)
        threshold = _float(params, "threshold", default=0.0)
        groups = self.pipeline.search_grouped(
            query,
            function=function,
            paper_set_name=paper_set,
            max_contexts=max_contexts,
            threshold=threshold,
            per_context_limit=top_k,
            selection_strategy=strategy,
        )
        return json_response(
            {
                "query": query,
                "score_function": function,
                "paper_set": paper_set,
                "selection_strategy": strategy,
                "top_k": top_k,
                "max_contexts": max_contexts,
                "threshold": threshold,
                "count": len(groups),
                "groups": [group_to_dict(group) for group in groups],
            }
        )

    def _handle_explain(self, params: Dict[str, List[str]]) -> Response:
        query = _required(params, "q")
        paper_id = _required(params, "paper_id")
        function = _choice(
            params, "score_function", scoring.function_names(), "text"
        )
        paper_set = _choice(
            params, "paper_set", scoring.PAPER_SET_NAMES, "text"
        )
        strategy = _choice(
            params, "selection_strategy", SELECTION_STRATEGIES, "probe"
        )
        max_contexts = _int(params, "max_contexts", default=5)
        if paper_id not in self.pipeline.corpus:
            raise BadRequest(f"unknown paper_id {paper_id!r}")
        explanation = self.pipeline.explain(
            query,
            paper_id,
            function=function,
            paper_set_name=paper_set,
            selection_strategy=strategy,
            max_contexts=max_contexts,
        )
        payload = explanation_to_dict(explanation)
        payload["score_function"] = function
        payload["paper_set"] = paper_set
        return json_response(payload)

    def _handle_ready(self, params: Dict[str, List[str]]) -> Response:
        """Readiness probe: can this process answer searches *right now*?

        Distinct from the inherited ``/health`` liveness route (which
        answers 200 while the process runs): readiness checks that a
        serving view is present and -- when ``ready_max_age_s`` is set
        -- young enough, and reports the substrate revision so a rollout
        can tell a served-but-stale replica (e.g. one pinned by a
        refused drift-gated reload) from a fresh one.  Not ready = 503.
        """
        view = self.pipeline._serving  # raw slot: a probe never triggers builds
        info: Dict[str, Any] = {
            "view_present": view is not None,
            "view_revision": None if view is None else view.revision,
            "view_age_s": (
                None if view is None else round(view.age_seconds, 3)
            ),
            "max_age_s": self.ready_max_age_s,
            "substrate_revision": self.pipeline.substrates.revision,
        }
        ready = view is not None
        if ready and self.ready_max_age_s is not None:
            ready = view.age_seconds <= self.ready_max_age_s
        info["ready"] = ready
        return json_response(info, status=200 if ready else 503)

    def _handle_analytics(self, params: Dict[str, List[str]]) -> Response:
        """Windowed query analytics + shadow agreement + last reload drift."""
        report = self.pipeline.last_drift_report
        return json_response(
            {
                "analytics": self.analytics.snapshot(),
                "shadow": (
                    None if self.shadow is None else self.shadow.snapshot()
                ),
                "drift": None if report is None else report.to_dict(),
            }
        )

    def _handle_ingest(
        self, params: Dict[str, List[str]], body: Optional[str]
    ) -> Response:
        """Apply a corpus delta to the live substrates, then swap the view.

        Body: JSON object ``{"add": [<paper dicts>], "remove": [<ids>]}``
        (either key optional).  The delta goes through the incremental
        :meth:`SubstrateStore.apply_delta` path, then the serving view is
        refreshed behind the same drift gate as ``/admin/reload``: a
        refused swap answers 409 with the drift report, leaves searches
        pinned to the pre-delta view, and ``?force=1`` overrides.
        """
        from repro.corpus.corpus import CorpusError
        from repro.corpus.paper import Paper

        if not body or not body.strip():
            raise BadRequest("missing JSON body")
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as error:
            raise BadRequest(f"invalid JSON body: {error}") from None
        if not isinstance(payload, dict):
            raise BadRequest("body must be a JSON object")
        unknown = set(payload) - {"add", "remove"}
        if unknown:
            raise BadRequest(
                f"unknown body keys {sorted(unknown)}; expected 'add'/'remove'"
            )
        raw_added = payload.get("add", [])
        removed = payload.get("remove", [])
        if not isinstance(raw_added, list) or not all(
            isinstance(item, dict) for item in raw_added
        ):
            raise BadRequest("'add' must be a list of paper objects")
        if not isinstance(removed, list) or not all(
            isinstance(item, str) for item in removed
        ):
            raise BadRequest("'remove' must be a list of paper-id strings")
        try:
            added = [Paper.from_dict(item) for item in raw_added]
        except (KeyError, TypeError, ValueError) as error:
            raise BadRequest(f"bad paper in 'add': {error}") from None
        force = _one(params, "force", "0") in ("1", "true", "yes")
        try:
            report = self.pipeline.substrates.apply_delta(
                added_papers=added, removed_ids=removed
            )
        except CorpusError as error:
            raise BadRequest(str(error)) from None
        if report.is_noop:
            return json_response(
                {"status": "noop", "report": report.to_dict()}
            )
        try:
            view = self.pipeline.refresh(enforce_drift=not force)
        except DriftExceeded as exceeded:
            return json_response(
                {
                    "status": "refused",
                    "error": str(exceeded),
                    "max_drift": exceeded.max_drift,
                    "drift": exceeded.report.to_dict(),
                    "report": report.to_dict(),
                },
                status=409,
            )
        payload_out: Dict[str, Any] = {
            "status": "ingested",
            "view_revision": view.revision,
            "report": report.to_dict(),
        }
        drift = self.pipeline.last_drift_report
        if drift is not None:
            payload_out["drift"] = drift.to_dict()
        return json_response(payload_out)

    def _handle_reload(self, params: Dict[str, List[str]]) -> Response:
        force = _one(params, "force", "0") in ("1", "true", "yes")
        try:
            view = self.pipeline.refresh(enforce_drift=not force)
        except DriftExceeded as exceeded:
            return json_response(
                {
                    "status": "refused",
                    "error": str(exceeded),
                    "max_drift": exceeded.max_drift,
                    "drift": exceeded.report.to_dict(),
                },
                status=409,
            )
        payload: Dict[str, Any] = {
            "status": "reloaded", "view_revision": view.revision,
        }
        report = self.pipeline.last_drift_report
        if report is not None:
            payload["drift"] = report.to_dict()
        return json_response(payload)
