"""Set- and vector-based similarity measures.

The text-based prestige function (paper section 3.2) combines cosine TF-IDF
similarities with set overlaps (authors, references); the overlap measures
here are also reused by bibliographic coupling and co-citation.
"""

from __future__ import annotations

from typing import Iterable, Set, Union

from repro.text.vectorize import SparseVector

SetLike = Union[Set, frozenset]


def cosine_similarity(a: SparseVector, b: SparseVector) -> float:
    """Cosine similarity of two sparse vectors (0.0 if either is empty)."""
    return a.cosine(b)


def jaccard_similarity(a: Iterable, b: Iterable) -> float:
    """|A ∩ B| / |A ∪ B|; 0.0 when both are empty.

    >>> jaccard_similarity({"a", "b"}, {"b", "c"})
    0.3333333333333333
    """
    set_a, set_b = set(a), set(b)
    union = set_a | set_b
    if not union:
        return 0.0
    return len(set_a & set_b) / len(union)


def dice_coefficient(a: Iterable, b: Iterable) -> float:
    """2|A ∩ B| / (|A| + |B|); 0.0 when both are empty."""
    set_a, set_b = set(a), set(b)
    total = len(set_a) + len(set_b)
    if total == 0:
        return 0.0
    return 2.0 * len(set_a & set_b) / total


def overlap_coefficient(a: Iterable, b: Iterable) -> float:
    """|A ∩ B| / min(|A|, |B|); 0.0 when either set is empty.

    The natural choice for author overlap, where the two papers' author
    lists can have very different sizes.
    """
    set_a, set_b = set(a), set(b)
    smaller = min(len(set_a), len(set_b))
    if smaller == 0:
        return 0.0
    return len(set_a & set_b) / smaller
